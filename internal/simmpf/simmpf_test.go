package simmpf

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/balance"
	"repro/internal/sim"
)

func run(t *testing.T, body func(k *sim.Kernel, f *Facility)) *sim.Kernel {
	t.Helper()
	k := sim.NewKernel(1)
	f := New(k, balance.Balance21000())
	body(k, f)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestLoopbackRoundCost(t *testing.T) {
	// One process sends and receives one 1024-byte message: elapsed time
	// must be ≈ SendTime + ReceiveTime plus small lock/desc overheads.
	m := balance.Balance21000()
	var elapsed sim.Time
	run(t, func(k *sim.Kernel, f *Facility) {
		k.Spawn("base", func(p *sim.Proc) {
			s := f.OpenSend(p, "loop")
			r := f.OpenReceive(p, "loop", FCFS)
			start := p.Now()
			f.Send(p, s, 1024)
			n := f.Receive(p, r)
			if n != 1024 {
				t.Errorf("received %d bytes", n)
			}
			elapsed = p.Now() - start
		})
	})
	ideal := m.SendTime(1024) + m.ReceiveTime(1024)
	if elapsed < ideal || elapsed > ideal*1.1 {
		t.Fatalf("round = %g s, want within 10%% above %g", elapsed, ideal)
	}
}

func TestBaseAsymptoteNear25KBps(t *testing.T) {
	// The paper's Figure 3 asymptote: large-message loop-back throughput
	// ≈ 25,000 bytes/s.
	const msgLen, rounds = 2048, 50
	var thr float64
	run(t, func(k *sim.Kernel, f *Facility) {
		k.Spawn("base", func(p *sim.Proc) {
			s := f.OpenSend(p, "loop")
			r := f.OpenReceive(p, "loop", FCFS)
			start := p.Now()
			for i := 0; i < rounds; i++ {
				f.Send(p, s, msgLen)
				f.Receive(p, r)
			}
			thr = float64(msgLen*rounds) / (p.Now() - start)
		})
	})
	if thr < 20000 || thr > 27000 {
		t.Fatalf("base throughput = %.0f bytes/s, want ≈25,000", thr)
	}
}

func TestFCFSDeliveryExactlyOnce(t *testing.T) {
	const nRecv, nMsgs = 4, 40
	counts := make([]int, nRecv)
	run(t, func(k *sim.Kernel, f *Facility) {
		k.Spawn("sender", func(p *sim.Proc) {
			s := f.OpenSend(p, "work")
			for i := 0; i < nMsgs; i++ {
				f.Send(p, s, 16)
			}
			f.CloseSend(p, s)
		})
		for i := 0; i < nRecv; i++ {
			idx := i
			k.Spawn(fmt.Sprintf("recv%d", i), func(p *sim.Proc) {
				c := f.OpenReceive(p, "work", FCFS)
				for j := 0; j < nMsgs/nRecv; j++ {
					f.Receive(p, c)
					counts[idx]++
				}
				f.CloseReceive(p, c)
			})
		}
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != nMsgs {
		t.Fatalf("delivered %d, want %d", total, nMsgs)
	}
}

func TestBroadcastAllReceiversSeeAll(t *testing.T) {
	const nRecv, nMsgs = 6, 30
	var got [nRecv]int
	var facility *Facility
	run(t, func(k *sim.Kernel, f *Facility) {
		facility = f
		// Receivers join first so no backlog subtleties arise.
		for i := 0; i < nRecv; i++ {
			idx := i
			k.Spawn(fmt.Sprintf("recv%d", i), func(p *sim.Proc) {
				c := f.OpenReceive(p, "news", Broadcast)
				for j := 0; j < nMsgs; j++ {
					if n := f.Receive(p, c); n != 128 {
						t.Errorf("length %d", n)
					}
					got[idx]++
				}
				f.CloseReceive(p, c)
			})
		}
		k.Spawn("sender", func(p *sim.Proc) {
			p.Advance(0.001) // let receivers open first
			s := f.OpenSend(p, "news")
			for i := 0; i < nMsgs; i++ {
				f.Send(p, s, 128)
			}
			f.CloseSend(p, s)
		})
	})
	for i, g := range got {
		if g != nMsgs {
			t.Fatalf("receiver %d got %d messages, want %d", i, g, nMsgs)
		}
	}
	msgs, bytes := facility.Delivered()
	if msgs != nRecv*nMsgs || bytes != nRecv*nMsgs*128 {
		t.Fatalf("delivered = %d msgs %d bytes", msgs, bytes)
	}
}

func TestBroadcastConcurrencyBeatsSerial(t *testing.T) {
	// N broadcast receivers copying concurrently must achieve close to
	// N× the single-receiver delivered throughput for large messages —
	// the effect Figure 5 demonstrates.
	elapsed := func(nRecv int) sim.Time {
		k := sim.NewKernel(1)
		f := New(k, balance.Balance21000())
		const nMsgs = 30
		for i := 0; i < nRecv; i++ {
			k.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
				c := f.OpenReceive(p, "b", Broadcast)
				for j := 0; j < nMsgs; j++ {
					f.Receive(p, c)
				}
				f.CloseReceive(p, c)
			})
		}
		k.Spawn("s", func(p *sim.Proc) {
			p.Advance(0.001)
			s := f.OpenSend(p, "b")
			for i := 0; i < nMsgs; i++ {
				f.Send(p, s, 1024)
			}
			f.CloseSend(p, s)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	t1, t8 := elapsed(1), elapsed(8)
	// 8 receivers get 8× the bytes; if copies were serialized the run
	// would take ≈8× as long. Concurrency should keep it under 2×.
	if t8 > 2*t1 {
		t.Fatalf("8 receivers took %.3f s vs %.3f s for 1 — copies not concurrent", t8, t1)
	}
}

func TestLockContentionGrowsWithReceivers(t *testing.T) {
	// Small messages with many FCFS receivers contend for the LNVC lock
	// (Figure 4's declining small-message curves).
	waitFor := func(nRecv int) sim.Time {
		k := sim.NewKernel(1)
		f := New(k, balance.Balance21000())
		const nMsgs = 200
		var circuit *Circuit
		k.Spawn("s", func(p *sim.Proc) {
			s := f.OpenSend(p, "w")
			circuit = s
			for i := 0; i < nMsgs; i++ {
				f.Send(p, s, 16)
			}
			for i := 0; i < nRecv; i++ {
				f.Send(p, s, 0) // poison per receiver
			}
			f.CloseSend(p, s)
		})
		for i := 0; i < nRecv; i++ {
			k.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
				c := f.OpenReceive(p, "w", FCFS)
				for {
					if n := f.Receive(p, c); n == 0 {
						break
					}
				}
				f.CloseReceive(p, c)
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		_, _, wait := circuit.LockStats()
		return wait
	}
	if w1, w8 := waitFor(1), waitFor(8); w8 <= w1 {
		t.Fatalf("lock wait with 8 receivers (%g) not above 1 receiver (%g)", w8, w1)
	}
}

func TestPagingFactorScalesCopies(t *testing.T) {
	m := balance.Balance21000()
	elapsed := func(regionBytes float64) sim.Time {
		k := sim.NewKernel(1)
		f := New(k, m)
		f.SetWorkload(16, regionBytes)
		k.Spawn("p", func(p *sim.Proc) {
			s := f.OpenSend(p, "x")
			r := f.OpenReceive(p, "x", FCFS)
			for i := 0; i < 20; i++ {
				f.Send(p, s, 1024)
				f.Receive(p, r)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	small, big := elapsed(1<<20), elapsed(24<<20)
	if big <= small {
		t.Fatalf("oversubscribed run (%g) not slower than resident run (%g)", big, small)
	}
	if f := New(sim.NewKernel(0), m); f.PagingFactor() != 1 {
		t.Fatal("default paging factor must be 1")
	}
}

func TestRetainedBacklogFirstBroadcastJoiner(t *testing.T) {
	run(t, func(k *sim.Kernel, f *Facility) {
		k.Spawn("s", func(p *sim.Proc) {
			s := f.OpenSend(p, "bk")
			for i := 0; i < 3; i++ {
				f.Send(p, s, 8)
			}
		})
		k.Spawn("r", func(p *sim.Proc) {
			p.Advance(1) // join after the sends
			c := f.OpenReceive(p, "bk", Broadcast)
			for i := 0; i < 3; i++ {
				if n := f.Receive(p, c); n != 8 {
					t.Errorf("backlog message %d: length %d", i, n)
				}
			}
			if f.Check(p, c) {
				t.Error("extra message visible")
			}
		})
	})
}

func TestBroadcastOnlyCircuitReclaims(t *testing.T) {
	var q *Circuit
	run(t, func(k *sim.Kernel, f *Facility) {
		k.Spawn("r", func(p *sim.Proc) {
			c := f.OpenReceive(p, "bo", Broadcast)
			q = c
			for i := 0; i < 50; i++ {
				f.Receive(p, c)
			}
		})
		k.Spawn("s", func(p *sim.Proc) {
			p.Advance(0.001)
			s := f.OpenSend(p, "bo")
			for i := 0; i < 50; i++ {
				f.Send(p, s, 64)
			}
		})
	})
	if q.QueueLen() != 0 {
		t.Fatalf("%d messages hoarded", q.QueueLen())
	}
}

func TestCloseReceiveReleasesClaims(t *testing.T) {
	var q *Circuit
	run(t, func(k *sim.Kernel, f *Facility) {
		k.Spawn("main", func(p *sim.Proc) {
			s := f.OpenSend(p, "vex")
			q = s
			r1 := f.OpenReceive(p, "vex", Broadcast)
			for i := 0; i < 10; i++ {
				f.Send(p, s, 32)
			}
			// This process read nothing; a second receiver reads all.
			_ = r1
		})
		k.Spawn("other", func(p *sim.Proc) {
			p.Advance(0.5)
			r2 := f.OpenReceive(p, "vex", Broadcast)
			_ = r2
			// Joined after the sends: sees nothing (not first receiver).
			if f.Check(p, r2) {
				t.Error("late broadcast joiner sees backlog")
			}
			f.CloseReceive(p, r2)
		})
		k.Spawn("closer", func(p *sim.Proc) {
			// The first receiver closes at t=1 without reading: all 10
			// messages become garbage.
			p.Advance(1)
		})
	})
	_ = q
}

func TestDeterministicElapsed(t *testing.T) {
	runOnce := func() sim.Time {
		k := sim.NewKernel(9)
		f := New(k, balance.Balance21000())
		for i := 0; i < 4; i++ {
			k.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
				c := f.OpenReceive(p, "d", FCFS)
				for j := 0; j < 25; j++ {
					f.Receive(p, c)
				}
			})
		}
		k.Spawn("s", func(p *sim.Proc) {
			s := f.OpenSend(p, "d")
			for i := 0; i < 100; i++ {
				f.Send(p, s, 64)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestCheckNonBlocking(t *testing.T) {
	run(t, func(k *sim.Kernel, f *Facility) {
		k.Spawn("p", func(p *sim.Proc) {
			s := f.OpenSend(p, "c")
			r := f.OpenReceive(p, "c", FCFS)
			before := p.Now()
			if f.Check(p, r) {
				t.Error("empty circuit reports message")
			}
			// Check costs only lock overhead, never blocks.
			if p.Now()-before > 0.001 {
				t.Errorf("check took %g s", p.Now()-before)
			}
			f.Send(p, s, 4)
			if !f.Check(p, r) {
				t.Error("message not visible")
			}
		})
	})
}

func TestMixedProtocolDelivery(t *testing.T) {
	fcfsGot, bcastGot := 0, 0
	run(t, func(k *sim.Kernel, f *Facility) {
		k.Spawn("bcast", func(p *sim.Proc) {
			c := f.OpenReceive(p, "mx", Broadcast)
			for i := 0; i < 10; i++ {
				f.Receive(p, c)
				bcastGot++
			}
		})
		k.Spawn("fcfs", func(p *sim.Proc) {
			c := f.OpenReceive(p, "mx", FCFS)
			for i := 0; i < 10; i++ {
				f.Receive(p, c)
				fcfsGot++
			}
		})
		k.Spawn("s", func(p *sim.Proc) {
			p.Advance(0.001)
			s := f.OpenSend(p, "mx")
			for i := 0; i < 10; i++ {
				f.Send(p, s, 16)
			}
		})
	})
	if fcfsGot != 10 || bcastGot != 10 {
		t.Fatalf("fcfs=%d bcast=%d, want 10/10", fcfsGot, bcastGot)
	}
}

func TestSendThroughputIndependentOfReceiverCount(t *testing.T) {
	// The paper: "the actual message transmission rate is unchanged from
	// the fcfs benchmark" — the sender's rate for large messages is the
	// same no matter how many broadcast receivers listen (± contention).
	rate := func(nRecv int) float64 {
		k := sim.NewKernel(1)
		f := New(k, balance.Balance21000())
		const nMsgs = 40
		var sendDone sim.Time
		for i := 0; i < nRecv; i++ {
			k.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
				c := f.OpenReceive(p, "t", Broadcast)
				for j := 0; j < nMsgs; j++ {
					f.Receive(p, c)
				}
			})
		}
		k.Spawn("s", func(p *sim.Proc) {
			p.Advance(0.001)
			s := f.OpenSend(p, "t")
			start := p.Now()
			for i := 0; i < nMsgs; i++ {
				f.Send(p, s, 1024)
			}
			sendDone = p.Now() - start
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(nMsgs*1024) / sendDone
	}
	r1, r8 := rate(1), rate(8)
	if math.Abs(r8-r1)/r1 > 0.35 {
		t.Fatalf("sender rate changed too much: %0.f vs %0.f", r1, r8)
	}
}
