// Package simmpf replays the MPF protocol on the discrete-event kernel
// (internal/sim) under the Balance 21000 cost model (internal/balance).
//
// internal/core is the real, concurrent MPF; this package is its timing
// twin. It executes the same LNVC semantics — FCFS and BROADCAST
// receivers, shared and private head pointers, message retention and
// reclamation — but instead of moving bytes it advances a simulated
// clock by the calibrated cost of each step: fixed per-primitive
// overhead, per-byte and per-block copy time (inflated by the paging
// factor when the workload oversubscribes the machine's 16 MB), and
// descriptor updates performed while holding the LNVC's FCFS lock, which
// is where Figure 4/5's contention effects come from.
//
// Because the sim kernel is logically single-threaded, the data
// structures here need no real synchronization; sim.Mutex models
// *queueing time*, not memory safety.
package simmpf

import (
	"fmt"

	"repro/internal/balance"
	"repro/internal/core"
	"repro/internal/sim"
)

// Protocol aliases the core protocol type so benchmarks share one
// vocabulary.
type Protocol = core.Protocol

// Receiver protocols.
const (
	FCFS      = core.FCFS
	Broadcast = core.Broadcast
)

// Facility is a simulated MPF instance.
type Facility struct {
	k *sim.Kernel
	m *balance.Machine

	circuits map[string]*Circuit

	// pagingFactor scales copy costs; set via SetWorkload.
	pagingFactor float64

	// Aggregate counters.
	sends, receives uint64
	bytesDelivered  uint64
}

// New creates a simulated facility on kernel k with machine model m.
func New(k *sim.Kernel, m *balance.Machine) *Facility {
	return &Facility{
		k:            k,
		m:            m,
		circuits:     make(map[string]*Circuit),
		pagingFactor: 1,
	}
}

// SetWorkload fixes the run's memory picture: nProcs process images plus
// a mapped region of regionBytes. The resulting paging factor scales all
// copy costs for the rest of the run (Figure 6's mechanism).
func (f *Facility) SetWorkload(nProcs int, regionBytes float64) {
	f.pagingFactor = f.m.PagingFactor(f.m.Footprint(nProcs, regionBytes))
}

// PagingFactor returns the copy-cost multiplier currently in force.
func (f *Facility) PagingFactor() float64 { return f.pagingFactor }

// Delivered returns total messages and payload bytes delivered to
// receivers.
func (f *Facility) Delivered() (msgs, bytes uint64) { return f.receives, f.bytesDelivered }

// message is a queued simulated message. Only its length is real.
type message struct {
	seq        uint64
	length     int
	pending    int
	fcfsNeeded bool
	pins       int
}

// recvState is one receive connection.
type recvState struct {
	proto   Protocol
	headSeq uint64
}

// Circuit is a simulated LNVC.
type Circuit struct {
	f    *Facility
	name string

	mu   *sim.Mutex
	cond *sim.Cond

	queue    []*message
	nextSeq  uint64
	fcfsHead uint64

	sends  map[int]bool
	recvs  map[int]*recvState
	nFCFS  int
	nBcast int

	maxQueued int
}

// Name returns the circuit name.
func (c *Circuit) Name() string { return c.name }

// MaxQueued returns the high-water mark of the circuit's FIFO length.
func (c *Circuit) MaxQueued() int { return c.maxQueued }

// LockStats exposes the LNVC lock's contention counters.
func (c *Circuit) LockStats() (acquisitions, contended uint64, waitTime sim.Time) {
	return c.mu.Stats()
}

func (f *Facility) circuit(name string) *Circuit {
	c, ok := f.circuits[name]
	if !ok {
		mu := sim.NewMutex(f.k)
		c = &Circuit{
			f:     f,
			name:  name,
			mu:    mu,
			cond:  sim.NewCond(mu),
			sends: make(map[int]bool),
			recvs: make(map[int]*recvState),
		}
		f.circuits[name] = c
	}
	return c
}

// OpenSend establishes a send connection for p, creating the circuit if
// needed.
func (f *Facility) OpenSend(p *sim.Proc, name string) *Circuit {
	c := f.circuit(name)
	c.mu.Lock(p)
	p.Advance(f.m.LockOverhead + f.m.DescUpdate)
	if c.sends[p.ID()] {
		panic(fmt.Sprintf("simmpf: %q double open_send on %q", p.Name(), name))
	}
	c.sends[p.ID()] = true
	c.mu.Unlock(p)
	return c
}

// OpenReceive establishes a receive connection with the given protocol.
// The first receiver to join a circuit holding retained messages
// inherits the backlog, as in internal/core.
func (f *Facility) OpenReceive(p *sim.Proc, name string, proto Protocol) *Circuit {
	c := f.circuit(name)
	c.mu.Lock(p)
	p.Advance(f.m.LockOverhead + f.m.DescUpdate)
	if _, dup := c.recvs[p.ID()]; dup {
		panic(fmt.Sprintf("simmpf: %q double open_receive on %q", p.Name(), name))
	}
	head := c.nextSeq
	if proto == Broadcast {
		if c.nFCFS+c.nBcast == 0 && len(c.queue) > 0 {
			head = c.queue[0].seq
			for _, m := range c.queue {
				m.pending++
				m.fcfsNeeded = false
			}
		}
		c.nBcast++
	} else {
		c.nFCFS++
	}
	c.recvs[p.ID()] = &recvState{proto: proto, headSeq: head}
	c.mu.Unlock(p)
	return c
}

// CloseSend removes p's send connection.
func (f *Facility) CloseSend(p *sim.Proc, c *Circuit) {
	c.mu.Lock(p)
	p.Advance(f.m.LockOverhead + f.m.DescUpdate)
	if !c.sends[p.ID()] {
		panic(fmt.Sprintf("simmpf: %q close_send without connection on %q", p.Name(), c.name))
	}
	delete(c.sends, p.ID())
	c.deleteIfDeadLocked()
	c.mu.Unlock(p)
}

// CloseReceive removes p's receive connection, releasing its claims.
func (f *Facility) CloseReceive(p *sim.Proc, c *Circuit) {
	c.mu.Lock(p)
	p.Advance(f.m.LockOverhead + f.m.DescUpdate)
	d, ok := c.recvs[p.ID()]
	if !ok {
		panic(fmt.Sprintf("simmpf: %q close_receive without connection on %q", p.Name(), c.name))
	}
	delete(c.recvs, p.ID())
	if d.proto == Broadcast {
		c.nBcast--
		for _, m := range c.queue {
			if m.seq >= d.headSeq && m.pending > 0 {
				m.pending--
			}
		}
	} else {
		c.nFCFS--
	}
	c.reclaimLocked()
	c.deleteIfDeadLocked()
	c.mu.Unlock(p)
}

func (c *Circuit) deleteIfDeadLocked() {
	if len(c.sends)+len(c.recvs) == 0 {
		c.queue = nil
		delete(c.f.circuits, c.name)
	}
}

// Send transfers an n-byte message to the circuit: fixed overhead and
// the buffer→blocks copy happen outside the lock; the enqueue happens
// inside it.
func (f *Facility) Send(p *sim.Proc, c *Circuit, n int) {
	if !c.sends[p.ID()] {
		panic(fmt.Sprintf("simmpf: %q send without connection on %q", p.Name(), c.name))
	}
	p.Advance(f.m.OpFixed)
	p.Advance(f.pagingFactor * f.m.CopyTime(n))

	c.mu.Lock(p)
	p.Advance(f.m.LockOverhead + f.m.DescUpdate)
	m := &message{seq: c.nextSeq, length: n, pending: c.nBcast, fcfsNeeded: true}
	c.nextSeq++
	c.queue = append(c.queue, m)
	if len(c.queue) > c.maxQueued {
		c.maxQueued = len(c.queue)
	}
	// Waking blocked receivers is kernel work the sender pays for, one
	// wakeup at a time — with many idle FCFS receivers parked on the
	// circuit this charge is what bends Figure 4's small-message curves
	// downward as receivers are added.
	p.Advance(float64(c.cond.Waiters()) * f.m.LockOverhead)
	c.cond.Broadcast(p)
	c.mu.Unlock(p)
	f.sends++
}

// Receive blocks until a message is available for p's connection, pays
// the blocks→buffer copy, and returns the message length.
func (f *Facility) Receive(p *sim.Proc, c *Circuit) int {
	p.Advance(f.m.OpFixed)
	c.mu.Lock(p)
	p.Advance(f.m.LockOverhead)
	d, ok := c.recvs[p.ID()]
	if !ok {
		panic(fmt.Sprintf("simmpf: %q receive without connection on %q", p.Name(), c.name))
	}
	var m *message
	for {
		m = c.availableLocked(d)
		if m != nil {
			break
		}
		c.cond.Wait(p)
		// Each wakeup re-examines the descriptor while holding the
		// lock; with many blocked receivers this re-check traffic is
		// the contention that bends Figure 4's small-message curves.
		p.Advance(f.m.LockOverhead)
	}
	p.Advance(f.m.DescUpdate)
	if d.proto == FCFS {
		m.fcfsNeeded = false
		c.fcfsHead = m.seq + 1
	} else {
		d.headSeq = m.seq + 1
		m.pending--
	}
	m.pins++
	c.mu.Unlock(p)

	p.Advance(f.pagingFactor * f.m.CopyTime(m.length))

	c.mu.Lock(p)
	p.Advance(f.m.LockOverhead)
	m.pins--
	c.reclaimLocked()
	c.mu.Unlock(p)

	f.receives++
	f.bytesDelivered += uint64(m.length)
	return m.length
}

// Check reports whether a message is available for p's connection,
// without blocking.
func (f *Facility) Check(p *sim.Proc, c *Circuit) bool {
	c.mu.Lock(p)
	p.Advance(f.m.LockOverhead)
	d, ok := c.recvs[p.ID()]
	if !ok {
		panic(fmt.Sprintf("simmpf: %q check without connection on %q", p.Name(), c.name))
	}
	avail := c.availableLocked(d) != nil
	c.mu.Unlock(p)
	return avail
}

func (c *Circuit) availableLocked(d *recvState) *message {
	if d.proto == FCFS {
		for _, m := range c.queue {
			if m.fcfsNeeded && m.seq >= c.fcfsHead {
				return m
			}
		}
		return nil
	}
	for _, m := range c.queue {
		if m.seq >= d.headSeq {
			return m
		}
	}
	return nil
}

func (c *Circuit) reclaimLocked() {
	bcastOnly := c.nFCFS == 0 && c.nBcast > 0
	kept := c.queue[:0]
	for _, m := range c.queue {
		dead := m.pins == 0 && m.pending == 0 && (!m.fcfsNeeded || bcastOnly)
		if !dead {
			kept = append(kept, m)
		}
	}
	c.queue = kept
}

// QueueLen returns the circuit's current FIFO length (for tests).
func (c *Circuit) QueueLen() int { return len(c.queue) }
