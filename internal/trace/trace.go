// Package trace provides ready-made core.Tracer implementations: an
// in-memory collector for tests and a text formatter for debugging
// parallel message-passing programs, in the spirit of the instrumentation
// the paper's authors used to attribute costs ("Detailed measurements
// show that, for large messages, ... message copying costs dominate").
package trace

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
)

// Collector records every event in memory. Safe for concurrent use.
type Collector struct {
	mu     sync.Mutex
	events []core.Event
	max    int
}

// NewCollector creates a collector retaining at most max events
// (0 means unlimited).
func NewCollector(max int) *Collector {
	return &Collector{max: max}
}

// Trace implements core.Tracer.
func (c *Collector) Trace(ev core.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max > 0 && len(c.events) >= c.max {
		return
	}
	c.events = append(c.events, ev)
}

// Events returns a copy of the recorded events.
func (c *Collector) Events() []core.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]core.Event, len(c.events))
	copy(out, c.events)
	return out
}

// Len returns the number of recorded events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Reset discards recorded events.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = c.events[:0]
}

// CountByOp tallies events per primitive.
func (c *Collector) CountByOp() map[core.Op]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := make(map[core.Op]int)
	for _, ev := range c.events {
		m[ev.Op]++
	}
	return m
}

// BytesByOp sums payload bytes per primitive (sends and receives).
func (c *Collector) BytesByOp() map[core.Op]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := make(map[core.Op]int)
	for _, ev := range c.events {
		if ev.Err == nil {
			m[ev.Op] += ev.Bytes
		}
	}
	return m
}

// Errors returns the events that carried a non-nil error.
func (c *Collector) Errors() []core.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []core.Event
	for _, ev := range c.events {
		if ev.Err != nil {
			out = append(out, ev)
		}
	}
	return out
}

// Writer formats each event as one text line on an io.Writer. Safe for
// concurrent use; write errors are counted, not returned (Trace has no
// error channel).
type Writer struct {
	mu        sync.Mutex
	w         io.Writer
	failures  int
	NameWidth int // pad LNVC names; 0 disables
}

// NewWriter creates a text tracer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Trace implements core.Tracer.
func (t *Writer) Trace(ev core.Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var err error
	switch {
	case ev.Err != nil:
		_, err = fmt.Fprintf(t.w, "p%-3d %-16s lnvc=%-3d ERR %v\n", ev.PID, ev.Op, ev.LNVC, ev.Err)
	case ev.Name != "":
		_, err = fmt.Fprintf(t.w, "p%-3d %-16s lnvc=%-3d name=%q\n", ev.PID, ev.Op, ev.LNVC, ev.Name)
	case ev.Op == core.OpSend || ev.Op == core.OpReceive:
		_, err = fmt.Fprintf(t.w, "p%-3d %-16s lnvc=%-3d %d bytes\n", ev.PID, ev.Op, ev.LNVC, ev.Bytes)
	default:
		_, err = fmt.Fprintf(t.w, "p%-3d %-16s lnvc=%-3d\n", ev.PID, ev.Op, ev.LNVC)
	}
	if err != nil {
		t.failures++
	}
}

// Failures reports how many writes failed.
func (t *Writer) Failures() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failures
}

// Multi fans one event stream out to several tracers.
func Multi(ts ...core.Tracer) core.Tracer { return multi(ts) }

type multi []core.Tracer

func (m multi) Trace(ev core.Event) {
	for _, t := range m {
		t.Trace(ev)
	}
}
