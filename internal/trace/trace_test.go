package trace

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestCollectorRecordsAndCounts(t *testing.T) {
	c := NewCollector(0)
	c.Trace(core.Event{Op: core.OpSend, PID: 1, Bytes: 10})
	c.Trace(core.Event{Op: core.OpSend, PID: 2, Bytes: 20})
	c.Trace(core.Event{Op: core.OpReceive, PID: 3, Bytes: 30})
	c.Trace(core.Event{Op: core.OpReceive, PID: 3, Err: errors.New("x")})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	byOp := c.CountByOp()
	if byOp[core.OpSend] != 2 || byOp[core.OpReceive] != 2 {
		t.Fatalf("CountByOp = %v", byOp)
	}
	bytesBy := c.BytesByOp()
	if bytesBy[core.OpSend] != 30 || bytesBy[core.OpReceive] != 30 {
		t.Fatalf("BytesByOp = %v (errored event must not count)", bytesBy)
	}
	if len(c.Errors()) != 1 {
		t.Fatalf("Errors = %v", c.Errors())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestCollectorCap(t *testing.T) {
	c := NewCollector(2)
	for i := 0; i < 5; i++ {
		c.Trace(core.Event{Op: core.OpSend})
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want cap 2", c.Len())
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Trace(core.Event{Op: core.OpCheckReceive})
			}
		}()
	}
	wg.Wait()
	if c.Len() != 4000 {
		t.Fatalf("Len = %d, want 4000", c.Len())
	}
}

func TestWriterFormats(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Trace(core.Event{Op: core.OpOpenSend, PID: 1, LNVC: 2, Name: "pipe"})
	w.Trace(core.Event{Op: core.OpSend, PID: 1, LNVC: 2, Bytes: 128})
	w.Trace(core.Event{Op: core.OpCloseSend, PID: 1, LNVC: 2})
	w.Trace(core.Event{Op: core.OpSend, PID: 1, LNVC: 2, Err: errors.New("bad")})
	out := buf.String()
	for _, want := range []string{`name="pipe"`, "128 bytes", "close_send", "ERR bad"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if w.Failures() != 0 {
		t.Fatalf("Failures = %d", w.Failures())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWriterCountsFailures(t *testing.T) {
	w := NewWriter(failWriter{})
	w.Trace(core.Event{Op: core.OpSend})
	if w.Failures() != 1 {
		t.Fatalf("Failures = %d", w.Failures())
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewCollector(0), NewCollector(0)
	m := Multi(a, b)
	m.Trace(core.Event{Op: core.OpSend})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out failed: %d/%d", a.Len(), b.Len())
	}
}

func TestEndToEndWithFacility(t *testing.T) {
	c := NewCollector(0)
	f, err := core.Init(core.Config{MaxProcesses: 2, Tracer: c})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	sid, _ := f.OpenSend(0, "t")
	rid, _ := f.OpenReceive(1, "t", core.FCFS)
	f.Send(0, sid, []byte("abc"))
	f.Receive(1, rid, make([]byte, 3))
	byOp := c.CountByOp()
	if byOp[core.OpOpenSend] != 1 || byOp[core.OpSend] != 1 || byOp[core.OpReceive] != 1 {
		t.Fatalf("CountByOp = %v", byOp)
	}
	if c.BytesByOp()[core.OpSend] != 3 {
		t.Fatalf("send bytes = %d", c.BytesByOp()[core.OpSend])
	}
}
