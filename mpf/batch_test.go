package mpf

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"
)

func TestConnBatchRoundTrip(t *testing.T) {
	fac, err := New(WithMaxProcesses(2))
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()
	sp, _ := fac.Process(0)
	rp, _ := fac.Process(1)
	s, err := sp.OpenSend("conv")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rp.OpenReceive("conv", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	in := make([][]byte, 6)
	for i := range in {
		in[i] = []byte(fmt.Sprintf("payload %d", i))
	}
	if err := s.SendBatch(in); err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, 6)
	for i := range out {
		out[i] = make([]byte, 32)
	}
	ns, err := r.ReceiveBatchDeadline(out, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 6 {
		t.Fatalf("consumed %d messages, want 6", len(ns))
	}
	for i, n := range ns {
		if got, want := string(out[i][:n]), string(in[i]); got != want {
			t.Errorf("message %d: %q, want %q", i, got, want)
		}
	}
	st := fac.Stats()
	if st.BatchSends != 1 || st.BatchReceives != 1 {
		t.Errorf("BatchSends=%d BatchReceives=%d, want 1 and 1", st.BatchSends, st.BatchReceives)
	}
}

func TestTypedSendBatch(t *testing.T) {
	fac, err := New(WithMaxProcesses(2))
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()
	sp, _ := fac.Process(0)
	rp, _ := fac.Process(1)
	s, err := sp.OpenSend("typed")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rp.OpenReceive("typed", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	type point struct{ X, Y int }
	ts := NewTypedSender[point](s)
	tr := NewTypedReceiver[point](r, 256)
	vals := []point{{1, 2}, {3, 4}, {5, 6}}
	if err := ts.SendBatch(vals); err != nil {
		t.Fatal(err)
	}
	if err := ts.SendBatch(nil); err != nil {
		t.Errorf("empty typed batch: %v", err)
	}
	for i, want := range vals {
		got, err := tr.ReceiveDeadline(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("value %d: %+v, want %+v", i, got, want)
		}
	}
}

func TestWriterLargeWriteStreamsThroughSmallRegion(t *testing.T) {
	// A single Write far larger than the whole shared region must
	// stream — batching may group chunks but must never demand more
	// blocks at once than the region can supply, or the write would
	// fail (or stall) where the old chunk-by-chunk loop succeeded.
	fac, err := New(WithMaxProcesses(2), WithMaxLNVCs(4), WithBlocksPerProcess(16))
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()
	region := fac.Core().Arena().NumBlocks() * fac.Core().Arena().PayloadSize()
	payload := make([]byte, 8*region) // 8x the region: cannot fit at once
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	sp, _ := fac.Process(0)
	rp, _ := fac.Process(1)
	s, err := sp.OpenSend("bigstream")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rp.OpenReceive("bigstream", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 0, len(payload))
	done := make(chan error, 1)
	go func() {
		reader := NewReader(r, 256)
		buf := make([]byte, 1024)
		for {
			n, err := reader.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				if errors.Is(err, io.EOF) {
					err = nil
				}
				done <- err
				return
			}
		}
	}()
	w := NewWriter(s, 256)
	n, err := w.Write(payload)
	if err != nil {
		t.Fatalf("large write failed: %v (wrote %d of %d)", err, n, len(payload))
	}
	if n != len(payload) {
		t.Fatalf("wrote %d of %d", n, len(payload))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("stream corrupted: %d bytes read, %d written", len(got), len(payload))
	}
}

func TestRegistryStatsExposed(t *testing.T) {
	fac, err := New(WithMaxProcesses(1), WithRegistryShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()
	if got := fac.RegistryShards(); got != 4 {
		t.Fatalf("RegistryShards() = %d, want 4", got)
	}
	p, _ := fac.Process(0)
	for i := 0; i < 8; i++ {
		s, err := p.OpenSend(fmt.Sprintf("reg-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	shardStats := fac.RegistryStats()
	if len(shardStats) != 4 {
		t.Fatalf("RegistryStats() has %d shards, want 4", len(shardStats))
	}
	var total uint64
	for _, s := range shardStats {
		total += s.Acquisitions
	}
	if total == 0 {
		t.Error("no registry acquisitions recorded")
	}
	st := fac.Stats()
	if st.RegistryAcquisitions != total {
		t.Errorf("Stats().RegistryAcquisitions = %d, per-shard sum = %d", st.RegistryAcquisitions, total)
	}
}
