package mpf_test

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/mpf"
)

// pipePair builds a connected Writer/Reader over one circuit.
func pipePair(t *testing.T, chunk int) (*mpf.Writer, *mpf.Reader) {
	t.Helper()
	f := newFac(t, mpf.WithMaxProcesses(2), mpf.WithBlocksPerProcess(4096))
	p0, _ := f.Process(0)
	p1, _ := f.Process(1)
	s, err := p0.OpenSend("stream")
	if err != nil {
		t.Fatal(err)
	}
	r, err := p1.OpenReceive("stream", mpf.FCFS)
	if err != nil {
		t.Fatal(err)
	}
	return mpf.NewWriter(s, chunk), mpf.NewReader(r, chunk)
}

func TestStreamRoundtrip(t *testing.T) {
	w, r := pipePair(t, 64)
	payload := make([]byte, 10_000)
	rand.New(rand.NewSource(1)).Read(payload)

	done := make(chan error, 1)
	var got bytes.Buffer
	go func() {
		_, err := io.Copy(&got, r)
		done <- err
	}()
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatal("stream corrupted")
	}
}

func TestStreamManySmallWrites(t *testing.T) {
	w, r := pipePair(t, 8)
	var want bytes.Buffer
	done := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- b
	}()
	for i := 0; i < 200; i++ {
		chunk := []byte{byte(i), byte(i + 1), byte(i + 2)}
		want.Write(chunk)
		if _, err := w.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	if got := <-done; !bytes.Equal(got, want.Bytes()) {
		t.Fatal("small-write stream corrupted")
	}
}

func TestStreamEmptyWriteIsNoOp(t *testing.T) {
	w, r := pipePair(t, 16)
	if n, err := w.Write(nil); n != 0 || err != nil {
		t.Fatalf("empty write: n=%d err=%v", n, err)
	}
	go func() {
		w.Write([]byte("x"))
		w.Close()
	}()
	b, err := io.ReadAll(r)
	if err != nil || string(b) != "x" {
		t.Fatalf("got %q err=%v (empty write must not inject EOF)", b, err)
	}
}

func TestStreamWriteAfterClose(t *testing.T) {
	w, r := pipePair(t, 16)
	go io.Copy(io.Discard, r)
	w.Close()
	if _, err := w.Write([]byte("late")); err == nil {
		t.Fatal("write after close succeeded")
	}
	if err := w.Close(); err == nil {
		t.Fatal("double close succeeded")
	}
}

func TestStreamReadAfterEOF(t *testing.T) {
	w, r := pipePair(t, 16)
	go func() {
		w.Write([]byte("ab"))
		w.Close()
	}()
	b, err := io.ReadAll(r)
	if err != nil || string(b) != "ab" {
		t.Fatal(err)
	}
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, io.EOF) {
		t.Fatalf("read after EOF: %v", err)
	}
}

func TestStreamWithBufio(t *testing.T) {
	w, r := pipePair(t, 32)
	go func() {
		bw := bufio.NewWriter(w)
		for i := 0; i < 50; i++ {
			bw.WriteString("line of text\n")
		}
		bw.Flush()
		w.Close()
	}()
	sc := bufio.NewScanner(r)
	lines := 0
	for sc.Scan() {
		if sc.Text() != "line of text" {
			t.Fatalf("line %d = %q", lines, sc.Text())
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != 50 {
		t.Fatalf("lines = %d", lines)
	}
}

func TestStreamBroadcastFanout(t *testing.T) {
	// Two Broadcast readers each see the full stream.
	f := newFac(t, mpf.WithMaxProcesses(3), mpf.WithBlocksPerProcess(2048))
	p0, _ := f.Process(0)
	p1, _ := f.Process(1)
	p2, _ := f.Process(2)
	r1conn, err := p1.OpenReceive("bstream", mpf.Broadcast)
	if err != nil {
		t.Fatal(err)
	}
	r2conn, err := p2.OpenReceive("bstream", mpf.Broadcast)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p0.OpenSend("bstream")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 3000)
	rand.New(rand.NewSource(2)).Read(payload)

	type res struct {
		b   []byte
		err error
	}
	results := make(chan res, 2)
	for _, rc := range []*mpf.RecvConn{r1conn, r2conn} {
		go func(rc *mpf.RecvConn) {
			b, err := io.ReadAll(mpf.NewReader(rc, 128))
			results <- res{b, err}
		}(rc)
	}
	w := mpf.NewWriter(s, 128)
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	w.Close()
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if !bytes.Equal(r.b, payload) {
			t.Fatal("broadcast stream corrupted")
		}
	}
}

func TestStreamDefaultChunk(t *testing.T) {
	w, r := pipePair(t, 0) // defaults
	go func() {
		w.Write(bytes.Repeat([]byte("d"), mpf.DefaultChunk*2+5))
		w.Close()
	}()
	b, err := io.ReadAll(r)
	if err != nil || len(b) != mpf.DefaultChunk*2+5 {
		t.Fatalf("len=%d err=%v", len(b), err)
	}
}

// Property: any payload and chunk size roundtrips.
func TestQuickStreamRoundtrip(t *testing.T) {
	f := func(payload []byte, chunkRaw uint8) bool {
		if len(payload) > 8192 {
			payload = payload[:8192]
		}
		chunk := int(chunkRaw)%200 + 1
		fac, err := mpf.New(mpf.WithMaxProcesses(2), mpf.WithBlocksPerProcess(4096))
		if err != nil {
			return false
		}
		defer fac.Shutdown()
		p0, _ := fac.Process(0)
		p1, _ := fac.Process(1)
		s, err := p0.OpenSend("q")
		if err != nil {
			return false
		}
		rc, err := p1.OpenReceive("q", mpf.FCFS)
		if err != nil {
			return false
		}
		w := mpf.NewWriter(s, chunk)
		r := mpf.NewReader(rc, chunk)
		done := make(chan []byte, 1)
		go func() {
			b, _ := io.ReadAll(r)
			done <- b
		}()
		if _, err := w.Write(payload); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		return bytes.Equal(<-done, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
