package mpf_test

import (
	"errors"
	"testing"
	"time"

	"repro/mpf"
)

func TestFacadeReceiveDeadline(t *testing.T) {
	f := newFac(t, mpf.WithMaxProcesses(2))
	p0, _ := f.Process(0)
	p1, _ := f.Process(1)
	s, _ := p0.OpenSend("fd")
	r, _ := p1.OpenReceive("fd", mpf.FCFS)

	if _, err := r.ReceiveDeadline(make([]byte, 4), 30*time.Millisecond); !errors.Is(err, mpf.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	s.Send([]byte("hi"))
	n, err := r.ReceiveDeadline(make([]byte, 4), time.Minute)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestFacadeTryReceive(t *testing.T) {
	f := newFac(t, mpf.WithMaxProcesses(2))
	p0, _ := f.Process(0)
	p1, _ := f.Process(1)
	s, _ := p0.OpenSend("ft")
	r, _ := p1.OpenReceive("ft", mpf.FCFS)
	if _, ok, err := r.TryReceive(make([]byte, 4)); ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	s.Send([]byte("x"))
	n, ok, err := r.TryReceive(make([]byte, 4))
	if !ok || err != nil || n != 1 {
		t.Fatalf("n=%d ok=%v err=%v", n, ok, err)
	}
}

func TestFacadeReceiveAny(t *testing.T) {
	f := newFac(t, mpf.WithMaxProcesses(2))
	p0, _ := f.Process(0)
	p1, _ := f.Process(1)
	sa, _ := p0.OpenSend("fa")
	_, _ = p0.OpenSend("fb")
	ra, _ := p1.OpenReceive("fa", mpf.FCFS)
	rb, _ := p1.OpenReceive("fb", mpf.FCFS)

	sa.Send([]byte("via-a"))
	buf := make([]byte, 8)
	idx, n, err := p1.ReceiveAny([]*mpf.RecvConn{ra, rb}, buf)
	if err != nil || idx != 0 || string(buf[:n]) != "via-a" {
		t.Fatalf("idx=%d buf=%q err=%v", idx, buf[:n], err)
	}

	// Deadline flavour.
	if _, _, err := p1.ReceiveAnyDeadline([]*mpf.RecvConn{ra, rb}, buf, 30*time.Millisecond); !errors.Is(err, mpf.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}

	// Mixing in another process's connection is rejected.
	rOther, _ := p0.OpenReceive("fc", mpf.FCFS)
	if _, _, err := p1.ReceiveAny([]*mpf.RecvConn{ra, rOther}, buf); !errors.Is(err, mpf.ErrBadProcess) {
		t.Fatalf("foreign conn: %v", err)
	}
	if _, _, err := p1.ReceiveAnyDeadline([]*mpf.RecvConn{rOther}, buf, time.Second); !errors.Is(err, mpf.ErrBadProcess) {
		t.Fatalf("foreign conn deadline: %v", err)
	}
}

func TestFacadeShutdownIdempotent(t *testing.T) {
	f, err := mpf.New(mpf.WithMaxProcesses(2))
	if err != nil {
		t.Fatal(err)
	}
	f.Shutdown()
	f.Shutdown() // must not panic
	if _, err := f.Process(0); err != nil {
		t.Fatal(err) // binding still works; operations fail
	}
	p, _ := f.Process(0)
	if _, err := p.OpenSend("x"); !errors.Is(err, mpf.ErrShutdown) {
		t.Fatalf("open after shutdown: %v", err)
	}
}

func TestFacadeCoreAccessor(t *testing.T) {
	f := newFac(t)
	if f.Core() == nil {
		t.Fatal("Core() nil")
	}
	p, _ := f.Process(0)
	s, _ := p.OpenSend("acc2")
	if id, ok := f.Core().LNVCByName("acc2"); !ok || id != s.ID() {
		t.Fatalf("core lookup: id=%d ok=%v", id, ok)
	}
}

func TestFacadeErrMessageTooBig(t *testing.T) {
	f := newFac(t, mpf.WithMaxProcesses(1), mpf.WithBlockSize(16), mpf.WithBlocksPerProcess(4))
	p, _ := f.Process(0)
	s, _ := p.OpenSend("big")
	huge := make([]byte, 1<<20)
	if err := s.Send(huge); !errors.Is(err, mpf.ErrMessageTooBig) {
		t.Fatalf("err = %v, want ErrMessageTooBig", err)
	}
}

func TestFacadeReceiveAnyAcrossProtocols(t *testing.T) {
	// One FCFS and one Broadcast connection multiplexed by ReceiveAny.
	f := newFac(t, mpf.WithMaxProcesses(2))
	p0, _ := f.Process(0)
	p1, _ := f.Process(1)
	sq, _ := p0.OpenSend("queue")
	sn, _ := p0.OpenSend("news")
	rq, _ := p1.OpenReceive("queue", mpf.FCFS)
	rn, _ := p1.OpenReceive("news", mpf.Broadcast)

	sn.Send([]byte("broadcasted"))
	sq.Send([]byte("queued"))
	buf := make([]byte, 16)
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		_, n, err := p1.ReceiveAny([]*mpf.RecvConn{rq, rn}, buf)
		if err != nil {
			t.Fatal(err)
		}
		seen[string(buf[:n])] = true
	}
	if !seen["broadcasted"] || !seen["queued"] {
		t.Fatalf("seen = %v", seen)
	}
}
