package mpf

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"
)

// TestFacadeLoanBatchWaitViews is the facade roundtrip of the batched
// zero-copy pipeline: LoanBatch/CommitAll on the way in, Selector
// WaitViews + ReleaseViews on the way out, with the ledger showing no
// payload copy in either direction.
func TestFacadeLoanBatchWaitViews(t *testing.T) {
	fac, err := New(WithMaxProcesses(2))
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()
	const (
		producers = 3
		perProd   = 10
		msgLen    = 512
	)
	err = fac.Run(2, func(p *Process) error {
		if p.PID() == 0 {
			for c := 0; c < producers; c++ {
				s, err := p.OpenSend(fmt.Sprintf("wv-%d", c))
				if err != nil {
					return err
				}
				ns := make([]int, perProd)
				for i := range ns {
					ns[i] = msgLen
				}
				lb, err := s.LoanBatch(ns)
				if err != nil {
					return err
				}
				defer lb.AbortAll() // no-op once committed
				for i := 0; i < perProd; i++ {
					b, ok := lb.Bytes(i)
					if !ok {
						return errors.New("batch loan not contiguous under span allocation")
					}
					b[0], b[msgLen-1] = byte(c), byte(i)
				}
				if err := lb.CommitAll(); err != nil {
					return err
				}
			}
			return nil
		}
		sel, err := p.NewSelector()
		if err != nil {
			return err
		}
		defer sel.Close()
		byID := make(map[ID]int)
		next := make([]int, producers)
		for c := 0; c < producers; c++ {
			rc, err := p.OpenReceive(fmt.Sprintf("wv-%d", c), FCFS)
			if err != nil {
				return err
			}
			defer rc.Close()
			if err := sel.Add(rc); err != nil {
				return err
			}
			byID[rc.ID()] = c
		}
		got := 0
		for got < producers*perProd {
			views, err := sel.WaitViewsDeadline(8, 5*time.Second)
			if err != nil {
				return fmt.Errorf("after %d: %w", got, err)
			}
			if len(views) > 8 {
				return fmt.Errorf("budget exceeded: %d views", len(views))
			}
			for _, v := range views {
				c, ok := byID[v.Circuit()]
				if !ok {
					return fmt.Errorf("view from unknown circuit %d", v.Circuit())
				}
				b, ok := v.Bytes()
				if !ok {
					return errors.New("view not contiguous")
				}
				if len(b) != msgLen || b[0] != byte(c) || b[msgLen-1] != byte(next[c]) {
					return fmt.Errorf("circuit %d message %d corrupted", c, next[c])
				}
				next[c]++
				got++
			}
			ReleaseViews(views)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := fac.Stats()
	if want := uint64(producers * perProd); st.LoanBatchSends != want {
		t.Errorf("LoanBatchSends = %d, want %d", st.LoanBatchSends, want)
	}
	if want := uint64(producers * perProd); st.HarvestedViews != want {
		t.Errorf("HarvestedViews = %d, want %d", st.HarvestedViews, want)
	}
	if st.PayloadCopiesIn != 0 || st.PayloadCopiesOut != 0 {
		t.Errorf("copies in/out = %d/%d, want 0/0 on the batched zero-copy pipeline",
			st.PayloadCopiesIn, st.PayloadCopiesOut)
	}
}

// TestWriterBatchedSendsAreZeroCopy pins the Writer rebase's batched
// half: a multi-chunk write goes out as LoanBatches — no SendBatch, no
// ledger-counted payload copy — and arrives intact.
func TestWriterBatchedSendsAreZeroCopy(t *testing.T) {
	fac, err := New(WithMaxProcesses(2), WithBlocksPerProcess(2048))
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()
	p, _ := fac.Process(0)
	s, err := p.OpenSend("wstream")
	if err != nil {
		t.Fatal(err)
	}
	rp, _ := fac.Process(1)
	r, err := rp.OpenReceive("wstream", FCFS)
	if err != nil {
		t.Fatal(err)
	}

	const chunk = 1024
	data := make([]byte, 10*chunk+100) // 11 chunks: one LoanBatch
	for i := range data {
		data[i] = byte(i * 7)
	}
	w := NewWriter(s, chunk)
	if n, err := w.Write(data); err != nil || n != len(data) {
		t.Fatalf("Write: n=%d err=%v", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := fac.Stats()
	if st.PayloadCopiesIn != 0 {
		t.Errorf("PayloadCopiesIn = %d, want 0: Writer's batched sends must not copy", st.PayloadCopiesIn)
	}
	if st.LoanBatchSends == 0 {
		t.Error("LoanBatchSends = 0: multi-chunk write did not ride the batch plane")
	}
	if st.BatchSends != 0 {
		t.Errorf("BatchSends = %d, want 0: the SendBatch copy path should be gone", st.BatchSends)
	}

	rd := NewReader(r, chunk)
	out, err := io.ReadAll(rd)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatalf("stream corrupted: %d bytes out, %d in", len(out), len(data))
	}
}

// TestTypedSendBatchRidesTheLoanBatch pins TypedSender.SendBatch onto
// the batched loan plane: self-contained gob messages, one batch, zero
// ledger-counted copies.
func TestTypedSendBatchRidesTheLoanBatch(t *testing.T) {
	type point struct{ X, Y int }
	fac, err := New(WithMaxProcesses(2))
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()
	p, _ := fac.Process(0)
	s, err := p.OpenSend("typed")
	if err != nil {
		t.Fatal(err)
	}
	rp, _ := fac.Process(1)
	r, err := rp.OpenReceive("typed", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTypedSender[point](s)
	vals := make([]point, 9)
	for i := range vals {
		vals[i] = point{X: i, Y: -i}
	}
	if err := ts.SendBatch(vals); err != nil {
		t.Fatal(err)
	}
	st := fac.Stats()
	if st.PayloadCopiesIn != 0 {
		t.Errorf("PayloadCopiesIn = %d, want 0", st.PayloadCopiesIn)
	}
	if want := uint64(len(vals)); st.LoanBatchSends != want {
		t.Errorf("LoanBatchSends = %d, want %d", st.LoanBatchSends, want)
	}
	tr := NewTypedReceiver[point](r, 4096)
	for i := range vals {
		got, err := tr.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if got != vals[i] {
			t.Fatalf("value %d: %+v, want %+v", i, got, vals[i])
		}
	}
}

// TestWaitViewsLevelTrigger checks that a budget-limited WaitViews
// leaves the surplus armed for the next call at the facade level.
func TestWaitViewsLevelTrigger(t *testing.T) {
	fac, err := New(WithMaxProcesses(1))
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()
	p, _ := fac.Process(0)
	s, _ := p.OpenSend("lt")
	rc, _ := p.OpenReceive("lt", FCFS)
	sel, err := p.NewSelector()
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	if err := sel.Add(rc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	for seen < 5 {
		views, err := sel.WaitViewsDeadline(2, time.Second)
		if err != nil {
			t.Fatalf("after %d: %v", seen, err)
		}
		for _, v := range views {
			b := make([]byte, 2)
			if n := v.CopyTo(b); n != 1 || b[0] != byte(seen) {
				t.Fatalf("message %d out of order", seen)
			}
			seen++
			v.Release() // individual release also works on harvested views
		}
	}
	if _, err := sel.WaitViewsDeadline(2, 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("drained WaitViews = %v, want ErrTimeout", err)
	}
}
