//go:build linux && (amd64 || arm64)

package mpf

import (
	"errors"
	"net"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shm"
)

func xprocPair(t *testing.T) (*net.UnixConn, *net.UnixConn) {
	t.Helper()
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM|syscall.SOCK_CLOEXEC, 0)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(fd int) *net.UnixConn {
		f := os.NewFile(uintptr(fd), "xproc-test")
		defer f.Close()
		c, err := net.FileConn(f)
		if err != nil {
			t.Fatal(err)
		}
		return c.(*net.UnixConn)
	}
	a, b := mk(fds[0]), mk(fds[1])
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// TestProcServeAttachRoundTrip runs the full cross-process protocol —
// fd passing, independent mapping, slot claim, both bridge phases —
// inside one test process. The attached client maps the memfd a second
// time at a different base address, so offset resolution is exercised
// exactly as it is between real processes.
func TestProcServeAttachRoundTrip(t *testing.T) {
	srv, err := ServeProc(ServeConfig{
		Children: 2,
		RingCap:  8,
		Options:  []Option{WithBlockSize(128), WithBlocksPerProcess(256)},
	})
	if errors.Is(err, ErrNoSharedBackend) {
		t.Skip("no shared backend")
	}
	if err != nil {
		t.Fatal(err)
	}

	const msgs, size = 200, 300
	var wg sync.WaitGroup
	clients := make([]*ProcClient, 2)
	for slot := 0; slot < 2; slot++ {
		parent, child := xprocPair(t)
		if err := srv.SendSegmentTo(parent, slot); err != nil {
			t.Fatal(err)
		}
		cl, err := AttachProcConn(child)
		if err != nil {
			t.Fatal(err)
		}
		clients[slot] = cl
		if cl.Slot() != slot {
			t.Fatalf("client claimed slot %d, want %d", cl.Slot(), slot)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cl.Serve(); err != nil {
				t.Error(err)
			}
		}()
	}

	for slot := 0; slot < 2; slot++ {
		if n, err := srv.BridgeDown(slot, msgs, size); err != nil || n != msgs {
			t.Fatalf("slot %d down: %d round trips, %v", slot, n, err)
		}
		if n, err := srv.BridgeUp(slot, msgs, size); err != nil || n != msgs {
			t.Fatalf("slot %d up: %d round trips, %v", slot, n, err)
		}
		if err := srv.FinishSlot(slot); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	for slot, cl := range clients {
		if cl.Served() != 2*msgs {
			t.Fatalf("slot %d served %d records, want %d", slot, cl.Served(), 2*msgs)
		}
		if s := srv.Table().SlotState(slot); s != core.SlotDetached {
			t.Fatalf("slot %d state %d after Serve, want detached", slot, s)
		}
		if err := cl.Close(); err != nil {
			t.Fatalf("client %d close: %v", slot, err)
		}
	}

	// The whole exchange crossed the process boundary by reference:
	// the ledger must show every message on the zero-copy planes and
	// not one payload byte copied.
	st := srv.Facility().Stats()
	if st.PayloadCopiesIn != 0 || st.PayloadCopiesOut != 0 {
		t.Fatalf("payload copies: in=%d out=%d, want 0/0", st.PayloadCopiesIn, st.PayloadCopiesOut)
	}
	if want := uint64(2 * 2 * msgs); st.LoanSends != want || st.ViewReceives != want {
		t.Fatalf("ledger: loans=%d views=%d, want %d each", st.LoanSends, st.ViewReceives, want)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("server close (unmap): %v", err)
	}
}

// TestProcAttachStaleGeneration forges a handshake with a wrong
// generation and checks the attach is refused at the table, not
// misread.
func TestProcAttachStaleGeneration(t *testing.T) {
	srv, err := ServeProc(ServeConfig{Children: 1})
	if errors.Is(err, ErrNoSharedBackend) {
		t.Skip("no shared backend")
	}
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	parent, child := xprocPair(t)
	h := srv.Handshake(0)
	h.Generation++ // a handshake from a previous serve instance
	if err := shm.SendSegment(parent, srv.Segment(), h); err != nil {
		t.Fatal(err)
	}
	if _, err := AttachProcConn(child); !errors.Is(err, core.ErrGenerationMismatch) {
		t.Fatalf("stale attach: %v, want ErrGenerationMismatch", err)
	}
}

// TestProcReclaimSlot kills a child (in spirit) mid-round-trip: the
// "child" pops a VIEW record and then vanishes without acking or
// detaching. The bridge is parked waiting for the ack with a pinned
// view and debited credit; ReclaimSlot must unpark it with ErrPeerDead,
// restore every pin and credit block, reformat the rings and free the
// slot — after which a second incarnation attaches and completes a full
// workload over the same slot.
func TestProcReclaimSlot(t *testing.T) {
	srv, err := ServeProc(ServeConfig{
		Children: 1,
		RingCap:  8,
		Options:  []Option{WithBlockSize(128), WithBlocksPerProcess(64), WithCredit(16)},
	})
	if errors.Is(err, ErrNoSharedBackend) {
		t.Skip("no shared backend")
	}
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	arena := srv.Facility().Core().Arena()
	totalBlocks := arena.FreeBlocks()

	parent, child := xprocPair(t)
	if err := srv.SendSegmentTo(parent, 0); err != nil {
		t.Fatal(err)
	}
	cl, err := AttachProcConn(child)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	gen := cl.Gen()

	// The bridge pushes one VIEW and parks for the ack.
	bridgeErr := make(chan error, 1)
	go func() {
		_, err := srv.BridgeDown(0, 5, 256)
		bridgeErr <- err
	}()

	// The child consumes the record... and dies. No ack, no detach.
	down, err := srv.Table().DownRing(0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok, err := down.TryPop(); err != nil || ok {
			break
		}
		time.Sleep(time.Millisecond)
	}

	rep, ok := srv.ReclaimSlot(0, gen)
	if !ok {
		t.Fatal("ReclaimSlot refused the dead incarnation")
	}
	if err := <-bridgeErr; !errors.Is(err, ErrPeerDead) {
		t.Fatalf("parked bridge returned %v, want ErrPeerDead", err)
	}

	// Stale generations cannot double-reclaim.
	if _, ok := srv.ReclaimSlot(0, gen); ok {
		t.Fatal("second ReclaimSlot of the same generation succeeded")
	}

	// Everything the dead incarnation held is back: slot free, ledger
	// quiescent, zero leaked pins (all arena blocks returned).
	if s := srv.Table().SlotState(0); s != core.SlotFree {
		t.Fatalf("slot state %d after reclaim, want free", s)
	}
	st := srv.Facility().Stats()
	if st.PeerDeaths != 1 {
		t.Fatalf("PeerDeaths = %d, want 1", st.PeerDeaths)
	}
	if st.CreditsHeld != 0 {
		t.Fatalf("credit leak: %d blocks still held after reclaim", st.CreditsHeld)
	}
	if free := arena.FreeBlocks(); free != totalBlocks {
		t.Fatalf("pin leak: %d of %d blocks free after reclaim", free, totalBlocks)
	}
	if rep.Gen != gen || rep.Elapsed <= 0 {
		t.Fatalf("report %+v", rep)
	}
	if st.ReclaimLatencyNanos == 0 {
		t.Fatal("reclaim latency not recorded")
	}

	// The slot is genuinely reusable: a new incarnation runs the full
	// protocol over the reformatted rings.
	parent2, child2 := xprocPair(t)
	if err := srv.SendSegmentTo(parent2, 0); err != nil {
		t.Fatal(err)
	}
	cl2, err := AttachProcConn(child2)
	if err != nil {
		t.Fatalf("re-attach after reclaim: %v", err)
	}
	defer cl2.Close()
	if cl2.Gen() != gen+1 {
		t.Fatalf("second incarnation gen %d, want %d", cl2.Gen(), gen+1)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- cl2.Serve() }()
	if n, err := srv.BridgeDown(0, 20, 256); err != nil || n != 20 {
		t.Fatalf("post-reclaim down: %d, %v", n, err)
	}
	if n, err := srv.BridgeUp(0, 20, 256); err != nil || n != 20 {
		t.Fatalf("post-reclaim up: %d, %v", n, err)
	}
	if err := srv.FinishSlot(0); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
	if st := srv.Facility().Stats(); st.CreditsHeld != 0 {
		t.Fatalf("ledger not quiescent after second incarnation: %d held", st.CreditsHeld)
	}
}

// TestProcSupervisorProbe covers the liveness sweep for peers the
// server did not spawn: a slot claimed under a pid that does not exist
// is confirmed dead over two sweeps and reclaimed; a slot owned by a
// live pid (this test process) is left alone.
func TestProcSupervisorProbe(t *testing.T) {
	srv, err := ServeProc(ServeConfig{Children: 2, RingCap: 8})
	if errors.Is(err, ErrNoSharedBackend) {
		t.Skip("no shared backend")
	}
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Slot 0: owner is this (live) process. Slot 1: a pid that cannot
	// exist (beyond any kernel.pid_max).
	if err := srv.Table().Claim(0, uint32(os.Getpid())); err != nil {
		t.Fatal(err)
	}
	if err := srv.Table().Claim(1, 1<<31-7); err != nil {
		t.Fatal(err)
	}

	deaths := make(chan ReclaimReport, 4)
	sup := srv.Supervise(nil, SuperviseConfig{
		ProbeInterval: 5 * time.Millisecond,
		OnDeath:       func(r ReclaimReport) { deaths <- r },
	})
	defer sup.Stop()

	select {
	case r := <-deaths:
		if r.Slot != 1 {
			t.Fatalf("probe reclaimed slot %d, want 1", r.Slot)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("probe never reclaimed the dead-pid slot")
	}
	if s := srv.Table().SlotState(1); s != core.SlotFree {
		t.Fatalf("slot 1 state %d after probe reclaim", s)
	}
	// Give the sweep a few more rounds: the live slot must survive.
	time.Sleep(50 * time.Millisecond)
	if s := srv.Table().SlotState(0); s != core.SlotAttached {
		t.Fatalf("live-owner slot reclaimed (state %d)", s)
	}
	if n := srv.Facility().Stats().PeerDeaths; n != 1 {
		t.Fatalf("PeerDeaths = %d, want 1", n)
	}
}
