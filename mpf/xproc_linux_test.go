//go:build linux && (amd64 || arm64)

package mpf

import (
	"errors"
	"net"
	"os"
	"sync"
	"syscall"
	"testing"

	"repro/internal/core"
	"repro/internal/shm"
)

func xprocPair(t *testing.T) (*net.UnixConn, *net.UnixConn) {
	t.Helper()
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM|syscall.SOCK_CLOEXEC, 0)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(fd int) *net.UnixConn {
		f := os.NewFile(uintptr(fd), "xproc-test")
		defer f.Close()
		c, err := net.FileConn(f)
		if err != nil {
			t.Fatal(err)
		}
		return c.(*net.UnixConn)
	}
	a, b := mk(fds[0]), mk(fds[1])
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// TestProcServeAttachRoundTrip runs the full cross-process protocol —
// fd passing, independent mapping, slot claim, both bridge phases —
// inside one test process. The attached client maps the memfd a second
// time at a different base address, so offset resolution is exercised
// exactly as it is between real processes.
func TestProcServeAttachRoundTrip(t *testing.T) {
	srv, err := ServeProc(ServeConfig{
		Children: 2,
		RingCap:  8,
		Options:  []Option{WithBlockSize(128), WithBlocksPerProcess(256)},
	})
	if errors.Is(err, ErrNoSharedBackend) {
		t.Skip("no shared backend")
	}
	if err != nil {
		t.Fatal(err)
	}

	const msgs, size = 200, 300
	var wg sync.WaitGroup
	clients := make([]*ProcClient, 2)
	for slot := 0; slot < 2; slot++ {
		parent, child := xprocPair(t)
		if err := srv.SendSegmentTo(parent, slot); err != nil {
			t.Fatal(err)
		}
		cl, err := AttachProcConn(child)
		if err != nil {
			t.Fatal(err)
		}
		clients[slot] = cl
		if cl.Slot() != slot {
			t.Fatalf("client claimed slot %d, want %d", cl.Slot(), slot)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cl.Serve(); err != nil {
				t.Error(err)
			}
		}()
	}

	for slot := 0; slot < 2; slot++ {
		if n, err := srv.BridgeDown(slot, msgs, size); err != nil || n != msgs {
			t.Fatalf("slot %d down: %d round trips, %v", slot, n, err)
		}
		if n, err := srv.BridgeUp(slot, msgs, size); err != nil || n != msgs {
			t.Fatalf("slot %d up: %d round trips, %v", slot, n, err)
		}
		if err := srv.FinishSlot(slot); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	for slot, cl := range clients {
		if cl.Served() != 2*msgs {
			t.Fatalf("slot %d served %d records, want %d", slot, cl.Served(), 2*msgs)
		}
		if s := srv.Table().SlotState(slot); s != core.SlotDetached {
			t.Fatalf("slot %d state %d after Serve, want detached", slot, s)
		}
		if err := cl.Close(); err != nil {
			t.Fatalf("client %d close: %v", slot, err)
		}
	}

	// The whole exchange crossed the process boundary by reference:
	// the ledger must show every message on the zero-copy planes and
	// not one payload byte copied.
	st := srv.Facility().Stats()
	if st.PayloadCopiesIn != 0 || st.PayloadCopiesOut != 0 {
		t.Fatalf("payload copies: in=%d out=%d, want 0/0", st.PayloadCopiesIn, st.PayloadCopiesOut)
	}
	if want := uint64(2 * 2 * msgs); st.LoanSends != want || st.ViewReceives != want {
		t.Fatalf("ledger: loans=%d views=%d, want %d each", st.LoanSends, st.ViewReceives, want)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("server close (unmap): %v", err)
	}
}

// TestProcAttachStaleGeneration forges a handshake with a wrong
// generation and checks the attach is refused at the table, not
// misread.
func TestProcAttachStaleGeneration(t *testing.T) {
	srv, err := ServeProc(ServeConfig{Children: 1})
	if errors.Is(err, ErrNoSharedBackend) {
		t.Skip("no shared backend")
	}
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	parent, child := xprocPair(t)
	h := srv.Handshake(0)
	h.Generation++ // a handshake from a previous serve instance
	if err := shm.SendSegment(parent, srv.Segment(), h); err != nil {
		t.Fatal(err)
	}
	if _, err := AttachProcConn(child); !errors.Is(err, core.ErrGenerationMismatch) {
		t.Fatalf("stale attach: %v, want ErrGenerationMismatch", err)
	}
}
