package mpf

import (
	"strings"
	"testing"
	"time"
)

// TestWaitViewsInvalidBudget covers the facade's invalid-budget path:
// without WithAutoHarvest, a non-positive WaitViews budget is an error
// (both forms), and the error explains that auto mode was not
// configured rather than claiming a facade-level misuse.
func TestWaitViewsInvalidBudget(t *testing.T) {
	fac, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()
	p, _ := fac.Process(0)
	q, _ := fac.Process(1)
	if _, err := p.OpenSend("inv"); err != nil {
		t.Fatal(err)
	}
	rc, err := q.OpenReceive("inv", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := q.NewSelector()
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	if err := sel.Add(rc); err != nil {
		t.Fatal(err)
	}
	if _, err := sel.WaitViews(0); err == nil {
		t.Fatal("WaitViews(0) succeeded without WithAutoHarvest")
	} else if !strings.Contains(err.Error(), "auto-harvest") {
		t.Fatalf("WaitViews(0) error %q, want an auto-harvest explanation", err)
	}
	if _, err := sel.WaitViewsDeadline(-1, time.Second); err == nil {
		t.Fatal("WaitViewsDeadline(-1) succeeded without WithAutoHarvest")
	}
}

// TestWaitViewsAutoMode drives the facade's adaptive budget end to
// end: WithAutoHarvest makes budget 0 legal, messages flow, and the
// budget gauge is visible through facade Stats.
func TestWaitViewsAutoMode(t *testing.T) {
	fac, err := New(WithAutoHarvest(1, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()
	p, _ := fac.Process(0)
	q, _ := fac.Process(1)
	sc, err := p.OpenSend("auto")
	if err != nil {
		t.Fatal(err)
	}
	rc, err := q.OpenReceive("auto", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := q.NewSelector()
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	if err := sel.Add(rc); err != nil {
		t.Fatal(err)
	}
	const msgs = 20
	for i := 0; i < msgs; i++ {
		if err := sc.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	for got < msgs {
		vs, err := sel.WaitViewsDeadline(0, 2*time.Second)
		if err != nil {
			t.Fatalf("after %d messages: %v", got, err)
		}
		for _, v := range vs {
			got++
			v.Release()
		}
	}
	if g := fac.Stats().HarvestAutoBudget; g < 1 {
		t.Fatalf("HarvestAutoBudget gauge = %d after auto rounds, want >= 1", g)
	}
}
