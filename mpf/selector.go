package mpf

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// ErrSelectorClosed is returned by operations on a closed Selector.
var ErrSelectorClosed = core.ErrSelectorClosed

// Selector multiplexes many of one process's receive connections over
// a single wait, epoll-style: one goroutine parks once and wakes only
// when a message lands on (or a close tears down) one of *its*
// circuits, doing O(ready) work per wakeup however many circuits are
// registered. It is the event-loop primitive the paper's check_receive
// polling idiom approximated:
//
//	sel, _ := p.NewSelector()
//	for _, rc := range conns {
//	    sel.Add(rc)
//	}
//	for {
//	    ready, err := sel.Wait()
//	    if err != nil { ... }
//	    for _, rc := range ready {
//	        for {
//	            n, ok, err := rc.TryReceive(buf)
//	            if !ok || err != nil { break }
//	            handle(buf[:n])
//	        }
//	    }
//	}
//
// Readiness is level-triggered — a connection Wait reports stays armed
// until a later Wait observes it drained, so partial consumption
// cannot strand queued messages — and, for FCFS connections, advisory
// in exactly the sense of the paper's check_receive caveat: a sibling
// FCFS receiver may win the race after Wait returns, so drain ready
// connections with TryReceive (or ReceiveBatch after a first
// TryReceive), never a blocking Receive.
//
// WaitViews is the zero-copy form of the same loop: instead of ids to
// re-receive from, it returns pinned Views claimed inside the wait
// round — one circuit lock acquisition per ready connection, however
// many messages it delivers — released in a batch with ReleaseViews.
// Because the claim happens during the harvest, WaitViews has no
// advisory window at all: a returned view is already consumed.
//
// Like a Process, a Selector must not be used from two goroutines at
// once — except Close, which may be called from anywhere to abort a
// parked Wait.
type Selector struct {
	p *Process
	s *core.Selector

	mu    sync.Mutex
	conns map[ID]*RecvConn
}

// NewSelector creates an empty selector for this process's receive
// connections.
func (p *Process) NewSelector() (*Selector, error) {
	s, err := p.fac.c.NewSelector(p.pid)
	if err != nil {
		return nil, err
	}
	return &Selector{p: p, s: s, conns: make(map[ID]*RecvConn)}, nil
}

// Add registers a receive connection. A connection with a message
// already queued is immediately ready.
func (s *Selector) Add(rc *RecvConn) error {
	if rc.p.pid != s.p.pid {
		return fmt.Errorf("%w: connection belongs to process %d, selector to %d",
			ErrBadProcess, rc.p.pid, s.p.pid)
	}
	if err := s.s.Add(rc.id); err != nil {
		return err
	}
	s.mu.Lock()
	s.conns[rc.id] = rc
	if !s.s.Has(rc.id) {
		// A concurrent Close unregistered the circuit between the core
		// Add and here (and cleared the map we just wrote to): report
		// the close rather than strand the entry.
		delete(s.conns, rc.id)
		s.mu.Unlock()
		return ErrSelectorClosed
	}
	s.mu.Unlock()
	return nil
}

// Remove unregisters a receive connection; queued messages and the
// connection itself are untouched.
func (s *Selector) Remove(rc *RecvConn) error {
	if err := s.s.Remove(rc.id); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.conns, rc.id)
	s.mu.Unlock()
	return nil
}

// Len returns the number of registered connections.
func (s *Selector) Len() int { return s.s.Len() }

// Wait blocks until at least one registered connection has a message
// available, then returns the ready connections. If a registered
// connection is closed — or its circuit deleted — while waiting, Wait
// drops the dead registration and returns ErrNotConnected promptly;
// facility Shutdown returns ErrShutdown, Close ErrSelectorClosed.
func (s *Selector) Wait() ([]*RecvConn, error) {
	ids, err := s.s.Wait()
	if err != nil {
		s.pruneOn(err)
		return nil, err
	}
	return s.resolveReady(ids)
}

// WaitDeadline is Wait bounded by d; it returns ErrTimeout if no
// connection becomes ready in time.
func (s *Selector) WaitDeadline(d time.Duration) ([]*RecvConn, error) {
	ids, err := s.s.WaitDeadline(d)
	if err != nil {
		s.pruneOn(err)
		return nil, err
	}
	return s.resolveReady(ids)
}

// WaitViews blocks like Wait but drains the ready connections into
// pinned zero-copy Views inside the same wait round: each ready
// circuit is locked once and up to the remaining budget of deliverable
// messages is claimed under that one hold, where the Wait +
// TryReceiveView idiom re-resolves and re-locks per message. max
// bounds the views claimed per call; at least one is returned on a nil
// error. Views arrive grouped by connection in FIFO order —
// View.Circuit attributes each to its RecvConn's ID — and every view
// holds a pin until released: individually via Release, or all at once
// via ReleaseViews, which undoes the harvest's pins with one lock
// acquisition per circuit. A connection left with traffic by the
// budget stays armed for the next call, exactly like Wait's
// level-triggered readiness. This is the event-loop receive shape:
// park once, claim a batch, read in place, release in a batch.
//
// With WithAutoHarvest configured, a non-positive max selects the
// adaptive budget: each round sizes itself from an EWMA of recent
// yields (clamped to the configured window) and splits the budget
// evenly across the connections that fired, so one hot connection
// cannot starve ready siblings. Without the option a non-positive max
// is an error.
func (s *Selector) WaitViews(max int) ([]*View, error) {
	vs, err := s.s.HarvestViews(max)
	if err != nil {
		s.pruneOn(err)
		return nil, err
	}
	return vs, nil
}

// WaitViewsDeadline is WaitViews bounded by d; it returns ErrTimeout
// if no connection delivers in time.
func (s *Selector) WaitViewsDeadline(max int, d time.Duration) ([]*View, error) {
	vs, err := s.s.HarvestViewsDeadline(max, d)
	if err != nil {
		s.pruneOn(err)
		return nil, err
	}
	return vs, nil
}

// Close unregisters everything, wakes a parked Wait, and fails all
// further operations with ErrSelectorClosed. Idempotent; the
// connections themselves stay open.
func (s *Selector) Close() error {
	err := s.s.Close()
	s.mu.Lock()
	clear(s.conns)
	s.mu.Unlock()
	return err
}

// resolveReady maps the core selector's ready ids back to RecvConns. A
// non-empty id set resolving to nothing means a concurrent Close beat
// the harvest home and cleared the map — surface the close rather than
// return an empty ready set on a nil error (the contract is at least
// one connection or an error).
func (s *Selector) resolveReady(ids []ID) ([]*RecvConn, error) {
	out := make([]*RecvConn, 0, len(ids))
	s.mu.Lock()
	for _, id := range ids {
		if rc, ok := s.conns[id]; ok {
			out = append(out, rc)
		}
	}
	s.mu.Unlock()
	if len(out) == 0 {
		return nil, ErrSelectorClosed
	}
	return out, nil
}

// pruneOn drops facade entries whose core registration is gone. Only
// an ErrNotConnected from a wait can have removed one (the core
// selector auto-drops registrations for circuits that died under a
// parked wait); timeouts and shutdowns never do, so the sweep is not
// paid on every idle tick. The surviving registrations are snapshotted
// in one core-selector lock pass (Circuits) rather than probing Has
// once per connection — one registry read pass however many circuits
// the loop multiplexes.
func (s *Selector) pruneOn(err error) {
	if !errors.Is(err, ErrNotConnected) {
		return
	}
	ids := s.s.Circuits()
	live := make(map[ID]struct{}, len(ids))
	for _, id := range ids {
		live[id] = struct{}{}
	}
	s.mu.Lock()
	for id := range s.conns {
		if _, ok := live[id]; !ok {
			delete(s.conns, id)
		}
	}
	s.mu.Unlock()
}
