package mpf_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/mpf"
)

type job struct {
	ID     int
	Name   string
	Coeffs []float64
}

func typedPair[T any](t *testing.T) (*mpf.TypedSender[T], *mpf.TypedReceiver[T]) {
	t.Helper()
	f := newFac(t, mpf.WithMaxProcesses(2), mpf.WithBlocksPerProcess(2048))
	p0, _ := f.Process(0)
	p1, _ := f.Process(1)
	s, err := p0.OpenSend("typed")
	if err != nil {
		t.Fatal(err)
	}
	r, err := p1.OpenReceive("typed", mpf.FCFS)
	if err != nil {
		t.Fatal(err)
	}
	return mpf.NewTypedSender[T](s), mpf.NewTypedReceiver[T](r, 4096)
}

func TestTypedRoundtripStruct(t *testing.T) {
	s, r := typedPair[job](t)
	want := job{ID: 42, Name: "pivot", Coeffs: []float64{1.5, -2.25, 3}}
	if err := s.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := r.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != want.ID || got.Name != want.Name || len(got.Coeffs) != 3 || got.Coeffs[1] != -2.25 {
		t.Fatalf("got %+v", got)
	}
}

func TestTypedSequenceSelfContained(t *testing.T) {
	// Every message is an independent gob stream: decoding message k
	// must not depend on having decoded messages < k.
	s, r := typedPair[string](t)
	for i := 0; i < 5; i++ {
		if err := s.Send(strings.Repeat("x", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// Skip ahead by receiving raw through the typed receiver anyway —
	// each Receive decodes standalone.
	for i := 0; i < 5; i++ {
		v, err := r.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if len(v) != i+1 {
			t.Fatalf("message %d: %q", i, v)
		}
	}
}

func TestTypedTryReceive(t *testing.T) {
	s, r := typedPair[int](t)
	if _, ok, err := r.TryReceive(); ok || err != nil {
		t.Fatalf("empty: ok=%v err=%v", ok, err)
	}
	s.Send(7)
	v, ok, err := r.TryReceive()
	if err != nil || !ok || v != 7 {
		t.Fatalf("v=%d ok=%v err=%v", v, ok, err)
	}
}

func TestTypedReceiveDeadline(t *testing.T) {
	_, r := typedPair[int](t)
	if _, err := r.ReceiveDeadline(30 * time.Millisecond); !errors.Is(err, mpf.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestTypedTruncationDetected(t *testing.T) {
	f := newFac(t, mpf.WithMaxProcesses(2), mpf.WithBlocksPerProcess(2048))
	p0, _ := f.Process(0)
	p1, _ := f.Process(1)
	s, _ := p0.OpenSend("trunc")
	rc, _ := p1.OpenReceive("trunc", mpf.FCFS)
	sender := mpf.NewTypedSender[string](s)
	// Tiny receive buffer: the encoded value exceeds it.
	receiver := mpf.NewTypedReceiver[string](rc, 8)
	if err := sender.Send(strings.Repeat("long", 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := receiver.Receive(); err == nil {
		t.Fatal("truncated value decoded without error")
	}
}

func TestTypedMapAndSliceValues(t *testing.T) {
	s, r := typedPair[map[string][]int](t)
	want := map[string][]int{"a": {1, 2}, "b": nil, "c": {3}}
	if err := s.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := r.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got["a"][1] != 2 || got["c"][0] != 3 {
		t.Fatalf("got %+v", got)
	}
}

func TestTypedAccessors(t *testing.T) {
	s, r := typedPair[int](t)
	if s.Conn() == nil || r.Conn() == nil {
		t.Fatal("nil conns")
	}
	if s.Conn().Name() != "typed" || r.Conn().Name() != "typed" {
		t.Fatal("wrong circuit")
	}
}

func TestTypedBroadcastFanout(t *testing.T) {
	f := newFac(t, mpf.WithMaxProcesses(3), mpf.WithBlocksPerProcess(2048))
	p0, _ := f.Process(0)
	p1, _ := f.Process(1)
	p2, _ := f.Process(2)
	r1c, _ := p1.OpenReceive("tb", mpf.Broadcast)
	r2c, _ := p2.OpenReceive("tb", mpf.Broadcast)
	sc, _ := p0.OpenSend("tb")
	s := mpf.NewTypedSender[job](sc)
	r1 := mpf.NewTypedReceiver[job](r1c, 1024)
	r2 := mpf.NewTypedReceiver[job](r2c, 1024)
	for i := 0; i < 4; i++ {
		if err := s.Send(job{ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		a, err := r1.Receive()
		if err != nil || a.ID != i {
			t.Fatalf("r1 msg %d: %+v err=%v", i, a, err)
		}
		b, err := r2.Receive()
		if err != nil || b.ID != i {
			t.Fatalf("r2 msg %d: %+v err=%v", i, b, err)
		}
	}
}
