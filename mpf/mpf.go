// Package mpf is a portable message passing facility for shared-memory
// parallelism, reproducing McGuire, Malony and Reed, "MPF: A Portable
// Message Passing Facility for Shared Memory Multiprocessors" (ICPP
// 1987).
//
// # Model
//
// Communication happens over logical, named virtual circuits (LNVCs):
// conversations that processes join and leave freely. Messages are
// addressed to the circuit, never to a process. A receiver joins with one
// of two protocols:
//
//   - FCFS: all first-come-first-serve receivers share one queue head;
//     each message is consumed by exactly one of them.
//   - Broadcast: every broadcast receiver sees the complete, time-ordered
//     message stream.
//
// The two coexist on one circuit: each message then reaches every
// broadcast receiver and exactly one FCFS receiver. This one abstraction
// expresses dialogues, work queues, group discussions and lectures
// (paper Figure 1).
//
// # Use
//
// Create a Facility, run a group of processes against it, and open
// connections by name:
//
//	fac, _ := mpf.New(mpf.WithMaxProcesses(4))
//	defer fac.Shutdown()
//	fac.Run(2, func(p *mpf.Process) error {
//	    if p.PID() == 0 {
//	        s, _ := p.OpenSend("greetings")
//	        return s.Send([]byte("hello")) // conn closed at Shutdown
//	    }
//	    r, _ := p.OpenReceive("greetings", mpf.FCFS)
//	    defer r.Close()
//	    buf := make([]byte, 64)
//	    n, err := r.Receive(buf)
//	    _ = buf[:n]
//	    return err
//	})
//
// The eight primitives of the paper (init, open_send, open_receive,
// close_send, close_receive, message_send, message_receive,
// check_receive) map to New, Process.OpenSend, Process.OpenReceive,
// SendConn.Close, RecvConn.Close, SendConn.Send, RecvConn.Receive and
// RecvConn.Check. Send is asynchronous; Receive blocks; Check is a
// non-blocking probe whose answer is advisory for FCFS connections
// (another FCFS receiver may win the race — the caveat of paper §2).
// Beyond the eight, Process.ReceiveAny waits on several circuits at
// once and Process.NewSelector builds an event loop over any number
// of them with epoll-style per-circuit wakeups (see Selector).
//
// # Circuit lifetime and lost messages
//
// A circuit exists only while at least one connection is open; the last
// Close deletes it and discards unread messages. A sender that opens,
// sends and closes before any receiver joins therefore loses its
// messages — the paper's §3.2 caveat, preserved deliberately. Programs
// must ensure a receiver (or another sender) stays connected across the
// gap; the usual idiom is a ready handshake on a side circuit before
// the sender's first Send or last Close (see examples/quickstart and
// examples/conversation). Note the sender in the sketch above simply
// never closes, which also keeps the circuit alive until Shutdown.
package mpf

import (
	"fmt"
	"time"

	"repro/internal/affinity"
	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/stats"
)

// Protocol selects a receiver's delivery discipline.
type Protocol = core.Protocol

// Receiver protocols, as in the paper's open_receive.
const (
	// FCFS receivers share one head pointer; each message is delivered
	// to exactly one of them.
	FCFS = core.FCFS
	// Broadcast receivers each see every message.
	Broadcast = core.Broadcast
)

// ID is MPF's internal circuit identifier.
type ID = core.ID

// Stats aggregates facility-wide operation counters.
type Stats = core.Stats

// LockStat is one registry shard's lock-acquisition counters.
type LockStat = stats.LockStat

// Tracer observes every primitive invocation; see package
// internal/trace for ready-made implementations.
type Tracer = core.Tracer

// Event is one traced primitive invocation.
type Event = core.Event

// Errors a facility can return. These alias the internal definitions so
// errors.Is works across the API boundary.
var (
	ErrBadProcess    = core.ErrBadProcess
	ErrBadLNVC       = core.ErrBadLNVC
	ErrTooManyLNVCs  = core.ErrTooManyLNVCs
	ErrNotConnected  = core.ErrNotConnected
	ErrAlreadyOpen   = core.ErrAlreadyOpen
	ErrNoMemory      = core.ErrNoMemory
	ErrNoCredit      = core.ErrNoCredit
	ErrShutdown      = core.ErrShutdown
	ErrMessageTooBig = core.ErrMessageTooBig
	ErrTimeout       = core.ErrTimeout
)

// Option configures New.
type Option func(*core.Config)

// WithMaxLNVCs bounds the number of simultaneously live circuits
// (default 64).
func WithMaxLNVCs(n int) Option { return func(c *core.Config) { c.MaxLNVCs = n } }

// WithMaxProcesses bounds process ids to [0, n) and scales the shared
// region (default 32).
func WithMaxProcesses(n int) Option { return func(c *core.Config) { c.MaxProcesses = n } }

// WithBlockSize sets the message block size in bytes, including the
// 4-byte link word (default 64; the paper's experiments used 10).
// Smaller blocks raise per-byte overhead exactly as in paper Figure 3.
func WithBlockSize(n int) Option { return func(c *core.Config) { c.BlockSize = n } }

// WithBlocksPerProcess scales the shared region: the block pool holds
// maxProcesses times this many blocks (default 256).
func WithBlocksPerProcess(n int) Option { return func(c *core.Config) { c.BlocksPerProcess = n } }

// WithRegistryShards splits the circuit name registry across n shards
// (rounded up to a power of two, default 16, capped at 1024 — read the
// effective value back via Facility.RegistryShards). One shard
// reproduces the paper's single global table lock; more shards let
// opens and closes on distinct circuits proceed without contending.
// Per-shard lock traffic is reported by RegistryStats.
func WithRegistryShards(n int) Option { return func(c *core.Config) { c.RegistryShards = n } }

// WithFailFastSend makes Send return ErrNoMemory when the region is
// exhausted instead of blocking until blocks are recycled.
func WithFailFastSend() Option { return func(c *core.Config) { c.SendPolicy = core.FailFast } }

// WithCredit enables per-circuit credit-based flow control: every
// circuit carries a receiver-granted budget of n accounted blocks (the
// same worst-case BlocksFor unit the capacity checks use), debited by
// Send/SendBatch/Loan/LoanBatch at allocation time and re-granted as
// receivers release the blocks (receives, view releases, reclamation).
// A send that would overdraw the budget waits for a grant — or, with
// WithFailFastSend, returns ErrNoCredit — so one hot circuit can no
// longer monopolise the shared region and starve every other tenant
// the way plain block-pool exhaustion lets it (mpfbench -credit
// measures the difference). A single message or batch whose demand
// exceeds the whole budget fails with ErrNoCredit under either policy,
// and a sender parked for credit when the circuit's last receiver
// departs fails with ErrNotConnected rather than parking forever.
// Zero (the default) leaves flow control off: the send paths are
// exactly the uncredited ones. Stats reports CreditStalls and
// CreditsHeld; see DESIGN.md §13.
func WithCredit(n int) Option { return func(c *core.Config) { c.CreditBlocks = n } }

// WithAutoHarvest enables the selector's adaptive harvest mode and
// sets its budget window: a WaitViews call with a non-positive budget
// sizes each round from an EWMA of recent harvest yields, clamped to
// [min, max] and probed upward after rounds that fill their budget,
// with the round's budget split evenly across the circuits that fired
// (never below one message each) so one hot circuit cannot starve
// ready siblings. Stats reports the HarvestAutoBudget gauge and
// HarvestCapHits. Without this option a non-positive WaitViews budget
// is an error; with it, positive budgets still select the fixed greedy
// sweep. See DESIGN.md §16.
func WithAutoHarvest(min, max int) Option {
	return func(c *core.Config) {
		c.AutoHarvestMin = min
		c.AutoHarvestMax = max
	}
}

// WithAffinity pins each Run worker goroutine to a CPU core (process
// id modulo the machine's CPU count) and spawned cross-process
// children (ServeProc/Spawn) to distinct cores, via sched_setaffinity
// on Linux. Pinning keeps each side of a hot producer/consumer pair on
// a fixed core, so the cache lines they exchange stop migrating with
// the scheduler. Purely advisory: platforms without affinity syscalls
// and runners whose cpuset forbids them run unpinned, never fail. See
// internal/affinity and DESIGN.md §16.
func WithAffinity() Option { return func(c *core.Config) { c.Affinity = true } }

// WithHugePages asks the kernel to back the shared block region with
// transparent huge pages (madvise MADV_HUGEPAGE on the region's 2 MiB
// aligned interior), cutting TLB pressure on large span workloads.
// Advisory: small regions and platforms without madvise degrade to
// base pages; Facility.Arena().HugeStats() reports whether the hint
// took. See DESIGN.md §16.
func WithHugePages() Option { return func(c *core.Config) { c.HugePages = true } }

// WithClassicChains reverts the shared region to the paper's exact
// allocation layout: a linked free list of individual blocks, so every
// multi-block payload is a fragmented chain. The default is the
// contiguous-span allocator, which lays each payload in one run of
// adjacent blocks whenever fragmentation permits — what makes
// single-slice zero-copy Loans and Views the common case. This option
// is the copy ablation's paper-plane baseline (mpfbench -copies).
func WithClassicChains() Option { return func(c *core.Config) { c.ClassicChains = true } }

// WithGlobalPulseMux reverts ReceiveAny to the pre-selector wakeup
// scheme — one facility-wide pulse per Send waking every parked
// waiter. It exists only as the ablation baseline the selector-scaling
// benchmark (mpfbench -select) measures the thundering herd against;
// leave it off in real use.
func WithGlobalPulseMux() Option { return func(c *core.Config) { c.GlobalPulseMux = true } }

// WithTracer installs a tracer receiving one Event per primitive call.
func WithTracer(t Tracer) Option { return func(c *core.Config) { c.Tracer = t } }

// Facility is one MPF instance: the shared region, the circuit name
// space, and the descriptor tables. It corresponds to the state the
// paper's init() builds in shared memory.
type Facility struct {
	c *core.Facility
}

// New creates a facility. It is the paper's init(maxLNVCs,
// maxProcesses); limits are supplied via options.
func New(opts ...Option) (*Facility, error) {
	var cfg core.Config
	for _, o := range opts {
		o(&cfg)
	}
	c, err := core.Init(cfg)
	if err != nil {
		return nil, err
	}
	return &Facility{c: c}, nil
}

// Shutdown tears the facility down; every blocked operation returns
// ErrShutdown. Idempotent.
func (f *Facility) Shutdown() { f.c.Shutdown() }

// Stats returns a snapshot of the facility's operation counters.
func (f *Facility) Stats() Stats { return f.c.Stats() }

// RegistryStats returns per-shard lock acquisition counters for the
// circuit name registry; index i describes shard i. An idle shard shows
// zero acquisitions; a fought-over one shows a high contended fraction.
func (f *Facility) RegistryStats() []LockStat { return f.c.RegistryStats() }

// RegistryShards returns the number of shards the registry was built
// with (WithRegistryShards rounded up to a power of two).
func (f *Facility) RegistryShards() int { return f.c.RegistryShards() }

// MaxProcesses returns the configured process limit.
func (f *Facility) MaxProcesses() int { return f.c.Config().MaxProcesses }

// CircuitCount returns the number of live circuits.
func (f *Facility) CircuitCount() int { return f.c.LNVCCount() }

// Core exposes the underlying implementation for the benchmark harness
// and tests that need descriptor-level introspection.
func (f *Facility) Core() *core.Facility { return f.c }

// CircuitInfo describes one live circuit's descriptor state.
type CircuitInfo = core.Info

// Circuit returns a snapshot of the named circuit's state: queued
// messages, connection counts and head positions — the contents of the
// paper's Figure 2 descriptor, for debugging and monitoring.
func (f *Facility) Circuit(name string) (CircuitInfo, bool) {
	id, ok := f.c.LNVCByName(name)
	if !ok {
		return CircuitInfo{}, false
	}
	info, err := f.c.LNVCInfo(id)
	if err != nil {
		return CircuitInfo{}, false
	}
	return info, true
}

// Process binds a process id to the facility. Ids must lie in
// [0, MaxProcesses); the same id must not be used from two goroutines at
// once (a "process" is a single thread of control, as in the paper).
func (f *Facility) Process(pid int) (*Process, error) {
	if pid < 0 || pid >= f.c.Config().MaxProcesses {
		return nil, fmt.Errorf("%w: %d", ErrBadProcess, pid)
	}
	return &Process{fac: f, pid: pid}, nil
}

// Run spawns n processes (ids 0..n-1) as goroutines, calls body for each,
// and waits for all to finish. The first error (by process id) is
// returned; worker panics are recovered into errors.
func (f *Facility) Run(n int, body func(p *Process) error) error {
	g, err := proc.NewGroup(n)
	if err != nil {
		return err
	}
	if n > f.c.Config().MaxProcesses {
		return fmt.Errorf("%w: group of %d exceeds max %d", ErrBadProcess, n, f.c.Config().MaxProcesses)
	}
	return g.Run(func(pid int) error {
		if f.c.Config().Affinity {
			// Pin each worker to its own core for the body's lifetime
			// (WithAffinity): pid order spreads hot pairs across cores.
			// Failure means the runner restricts affinity — run
			// unpinned.
			if restore, err := affinity.PinThread(pid); err == nil {
				defer restore()
			}
		}
		p, err := f.Process(pid)
		if err != nil {
			return err
		}
		return body(p)
	})
}

// Process is one participant in MPF conversations.
type Process struct {
	fac *Facility
	pid int
}

// PID returns the process id.
func (p *Process) PID() int { return p.pid }

// Facility returns the facility this process belongs to.
func (p *Process) Facility() *Facility { return p.fac }

// OpenSend establishes a send connection on the named circuit, creating
// the circuit if it does not exist (paper open_send).
func (p *Process) OpenSend(name string) (*SendConn, error) {
	id, err := p.fac.c.OpenSend(p.pid, name)
	if err != nil {
		return nil, err
	}
	return &SendConn{p: p, id: id, name: name}, nil
}

// OpenReceive establishes a receive connection with the given protocol on
// the named circuit, creating the circuit if it does not exist (paper
// open_receive).
func (p *Process) OpenReceive(name string, proto Protocol) (*RecvConn, error) {
	id, err := p.fac.c.OpenReceive(p.pid, name, proto)
	if err != nil {
		return nil, err
	}
	return &RecvConn{p: p, id: id, name: name, proto: proto}, nil
}

// ReceiveAny blocks until any of the given receive connections (all of
// which must belong to this process) delivers a message, consuming it
// into buf. It returns the index of the connection that delivered and
// the byte count. Scanning is round-robin across calls, so a busy
// circuit cannot starve the others. The paper's idiom for this was a
// check_receive polling loop; ReceiveAny is its blocking equivalent.
func (p *Process) ReceiveAny(conns []*RecvConn, buf []byte) (int, int, error) {
	ids := make([]ID, len(conns))
	for i, c := range conns {
		if c.p.pid != p.pid {
			return 0, 0, fmt.Errorf("%w: connection %d belongs to process %d", ErrBadProcess, i, c.p.pid)
		}
		ids[i] = c.id
	}
	return p.fac.c.ReceiveAny(p.pid, ids, buf)
}

// ReceiveAnyDeadline is ReceiveAny bounded by d.
func (p *Process) ReceiveAnyDeadline(conns []*RecvConn, buf []byte, d time.Duration) (int, int, error) {
	ids := make([]ID, len(conns))
	for i, c := range conns {
		if c.p.pid != p.pid {
			return 0, 0, fmt.Errorf("%w: connection %d belongs to process %d", ErrBadProcess, i, c.p.pid)
		}
		ids[i] = c.id
	}
	return p.fac.c.ReceiveAnyDeadline(p.pid, ids, buf, d)
}

// SendConn is an open send connection to a circuit.
type SendConn struct {
	p    *Process
	id   ID
	name string
}

// ID returns MPF's internal identifier for the circuit.
func (s *SendConn) ID() ID { return s.id }

// Name returns the circuit name.
func (s *SendConn) Name() string { return s.name }

// Send transfers buf to the circuit asynchronously (paper message_send):
// it returns once the payload has been copied into shared message blocks,
// before any receiver runs.
func (s *SendConn) Send(buf []byte) error { return s.p.fac.c.Send(s.p.pid, s.id, buf) }

// SendBatch transfers every buffer in bufs as one message each, paying
// the per-send fixed costs (circuit lock, block allocation, receiver
// wakeup) once for the whole batch. The batch is atomic with respect to
// other senders: its messages occupy consecutive positions in the
// circuit's order. Either all of it is enqueued or none.
func (s *SendConn) SendBatch(bufs [][]byte) error {
	return s.p.fac.c.SendBatch(s.p.pid, s.id, bufs)
}

// Close removes the send connection (paper close_send). If it was the
// circuit's last connection, the circuit is deleted and unread messages
// are discarded.
func (s *SendConn) Close() error { return s.p.fac.c.CloseSend(s.p.pid, s.id) }

// RecvConn is an open receive connection to a circuit.
type RecvConn struct {
	p     *Process
	id    ID
	name  string
	proto Protocol
}

// ID returns MPF's internal identifier for the circuit.
func (r *RecvConn) ID() ID { return r.id }

// Name returns the circuit name.
func (r *RecvConn) Name() string { return r.name }

// Protocol returns the connection's delivery protocol.
func (r *RecvConn) Protocol() Protocol { return r.proto }

// Receive blocks until a message is available for this connection, copies
// it into buf (truncating to len(buf)) and returns the byte count (paper
// message_receive).
func (r *RecvConn) Receive(buf []byte) (int, error) { return r.p.fac.c.Receive(r.p.pid, r.id, buf) }

// ReceiveDeadline is Receive bounded by d: it returns ErrTimeout if no
// message arrives in time.
func (r *RecvConn) ReceiveDeadline(buf []byte, d time.Duration) (int, error) {
	return r.p.fac.c.ReceiveDeadline(r.p.pid, r.id, buf, d)
}

// ReceiveBatch blocks until at least one message is available, then
// consumes as many as are ready — at most one per buffer, each
// truncated to its buffer — under a single circuit lock acquisition.
// It returns the per-message byte counts (one entry per message
// consumed). For FCFS connections the batch claim is atomic: sibling
// receivers cannot interleave within it.
func (r *RecvConn) ReceiveBatch(bufs [][]byte) ([]int, error) {
	return r.p.fac.c.ReceiveBatch(r.p.pid, r.id, bufs)
}

// ReceiveBatchDeadline is ReceiveBatch bounded by d for the first
// message; once one is available the batch never waits for more.
func (r *RecvConn) ReceiveBatchDeadline(bufs [][]byte, d time.Duration) ([]int, error) {
	return r.p.fac.c.ReceiveBatchDeadline(r.p.pid, r.id, bufs, d)
}

// Check reports whether a message is currently available (paper
// check_receive). For FCFS connections the answer is advisory: another
// FCFS receiver may consume the message first.
func (r *RecvConn) Check() (bool, error) { return r.p.fac.c.CheckReceive(r.p.pid, r.id) }

// TryReceive consumes a message like Receive if one is available,
// reporting (n, true); otherwise it returns (0, false) without
// blocking. Unlike a Check-then-Receive pair it cannot lose the race
// against other FCFS receivers (the paper's check_receive caveat).
func (r *RecvConn) TryReceive(buf []byte) (int, bool, error) {
	return r.p.fac.c.TryReceive(r.p.pid, r.id, buf)
}

// Close removes the receive connection (paper close_receive), releasing
// this receiver's claim on any unread messages. If it was the circuit's
// last connection, the circuit is deleted.
func (r *RecvConn) Close() error { return r.p.fac.c.CloseReceive(r.p.pid, r.id) }

// Barrier returns a reusable barrier for n parties, a convenience for
// phase-structured applications (the SOR solver uses one).
func Barrier(n int) (*proc.Barrier, error) { return proc.NewBarrier(n) }
