package mpf_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/mpf"
)

func newFac(t *testing.T, opts ...mpf.Option) *mpf.Facility {
	t.Helper()
	f, err := mpf.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Shutdown)
	return f
}

func TestQuickstartFlow(t *testing.T) {
	f := newFac(t, mpf.WithMaxProcesses(2))
	var got []byte
	err := f.Run(2, func(p *mpf.Process) error {
		if p.PID() == 0 {
			s, err := p.OpenSend("greetings")
			if err != nil {
				return err
			}
			// Deliberately not closed: the circuit must outlive the
			// sender so a receiver scheduled later still finds the
			// message (see the package comment on circuit lifetime).
			return s.Send([]byte("hello"))
		}
		r, err := p.OpenReceive("greetings", mpf.FCFS)
		if err != nil {
			return err
		}
		defer r.Close()
		buf := make([]byte, 64)
		n, err := r.Receive(buf)
		got = append(got, buf[:n]...)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	// The sender's connection is still open by design, so exactly one
	// circuit survives until Shutdown.
	if f.CircuitCount() != 1 {
		t.Fatalf("CircuitCount = %d, want 1", f.CircuitCount())
	}
}

func TestProcessValidation(t *testing.T) {
	f := newFac(t, mpf.WithMaxProcesses(4))
	if _, err := f.Process(-1); !errors.Is(err, mpf.ErrBadProcess) {
		t.Fatalf("err = %v", err)
	}
	if _, err := f.Process(4); !errors.Is(err, mpf.ErrBadProcess) {
		t.Fatalf("err = %v", err)
	}
	if err := f.Run(5, func(*mpf.Process) error { return nil }); !errors.Is(err, mpf.ErrBadProcess) {
		t.Fatalf("oversized Run: %v", err)
	}
	if err := f.Run(0, func(*mpf.Process) error { return nil }); err == nil {
		t.Fatal("zero-size Run accepted")
	}
}

func TestConnectionAccessors(t *testing.T) {
	f := newFac(t)
	p, _ := f.Process(0)
	s, err := p.OpenSend("acc")
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.OpenReceive("acc", mpf.Broadcast)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "acc" || r.Name() != "acc" {
		t.Fatal("names wrong")
	}
	if s.ID() != r.ID() {
		t.Fatal("same circuit, different ids")
	}
	if r.Protocol() != mpf.Broadcast {
		t.Fatal("protocol wrong")
	}
	if p.PID() != 0 || p.Facility() != f {
		t.Fatal("process accessors wrong")
	}
}

func TestWorkQueuePattern(t *testing.T) {
	// N workers share an FCFS circuit as a work queue; a master sends
	// jobs and collects results on a second circuit. The master waits
	// for every worker's ready announcement before queueing jobs:
	// without the handshake a fast worker could drain the queue —
	// poisons included — and close, deleting the circuit and dropping
	// the slow workers' poisons (the paper's §3.2 lost-message
	// scenario).
	const nWorkers, nJobs = 4, 64
	f := newFac(t, mpf.WithMaxProcesses(nWorkers+1))
	results := make([]bool, nJobs)
	var mu sync.Mutex
	err := f.Run(nWorkers+1, func(p *mpf.Process) error {
		if p.PID() == 0 { // master
			jobs, err := p.OpenSend("jobs")
			if err != nil {
				return err
			}
			defer jobs.Close()
			done, err := p.OpenReceive("done", mpf.FCFS)
			if err != nil {
				return err
			}
			defer done.Close()
			buf := make([]byte, 1)
			for w := 0; w < nWorkers; w++ { // ready handshake
				if _, err := done.Receive(buf); err != nil {
					return err
				}
			}
			for j := 0; j < nJobs; j++ {
				if err := jobs.Send([]byte{byte(j)}); err != nil {
					return err
				}
			}
			for j := 0; j < nJobs; j++ {
				if _, err := done.Receive(buf); err != nil {
					return err
				}
				mu.Lock()
				if results[buf[0]] {
					mu.Unlock()
					return fmt.Errorf("job %d completed twice", buf[0])
				}
				results[buf[0]] = true
				mu.Unlock()
			}
			// Poison the queue so workers exit.
			for w := 0; w < nWorkers; w++ {
				if err := jobs.Send([]byte{0xFF}); err != nil {
					return err
				}
			}
			return nil
		}
		// worker
		jobs, err := p.OpenReceive("jobs", mpf.FCFS)
		if err != nil {
			return err
		}
		defer jobs.Close()
		done, err := p.OpenSend("done")
		if err != nil {
			return err
		}
		defer done.Close()
		if err := done.Send([]byte{0xFE}); err != nil { // ready
			return err
		}
		buf := make([]byte, 1)
		for {
			if _, err := jobs.Receive(buf); err != nil {
				return err
			}
			if buf[0] == 0xFF {
				return nil
			}
			if err := done.Send(buf); err != nil {
				return err
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for j, ok := range results {
		if !ok {
			t.Fatalf("job %d never completed", j)
		}
	}
}

func TestLecturePattern(t *testing.T) {
	// One lecturer broadcasts; every listener hears the whole lecture in
	// order — the paper's "lecture" conversation type.
	const nListeners, nSlides = 5, 30
	f := newFac(t, mpf.WithMaxProcesses(nListeners+1))
	err := f.Run(nListeners+1, func(p *mpf.Process) error {
		if p.PID() == 0 {
			lecture, err := p.OpenSend("lecture")
			if err != nil {
				return err
			}
			defer lecture.Close()
			// Wait for everyone to be seated: listeners announce
			// themselves on a side circuit.
			seated, err := p.OpenReceive("seated", mpf.FCFS)
			if err != nil {
				return err
			}
			defer seated.Close()
			buf := make([]byte, 1)
			for i := 0; i < nListeners; i++ {
				if _, err := seated.Receive(buf); err != nil {
					return err
				}
			}
			for s := 0; s < nSlides; s++ {
				if err := lecture.Send([]byte{byte(s)}); err != nil {
					return err
				}
			}
			return nil
		}
		lecture, err := p.OpenReceive("lecture", mpf.Broadcast)
		if err != nil {
			return err
		}
		defer lecture.Close()
		seat, err := p.OpenSend("seated")
		if err != nil {
			return err
		}
		// Keep the seat connection open until the lecture ends: closing
		// right after sending could delete the circuit — dropping the
		// announcement — if the lecturer has not opened its receive
		// side yet (§3.2 lost-message scenario).
		defer seat.Close()
		if err := seat.Send([]byte{byte(p.PID())}); err != nil {
			return err
		}
		buf := make([]byte, 1)
		for s := 0; s < nSlides; s++ {
			if _, err := lecture.Receive(buf); err != nil {
				return err
			}
			if buf[0] != byte(s) {
				return fmt.Errorf("listener %d: slide %d got %d", p.PID(), s, buf[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLargeMessageRoundtrip(t *testing.T) {
	f := newFac(t, mpf.WithMaxProcesses(2), mpf.WithBlocksPerProcess(2048))
	payload := make([]byte, 32*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	// The sender closes right after its send; without the barrier it can
	// open, send and close before the receiver joins, deleting the
	// circuit and dropping the message (the paper's §3.2 lost-message
	// scenario) — the receiver would then block forever.
	bar, err := mpf.Barrier(2)
	if err != nil {
		t.Fatal(err)
	}
	err = f.Run(2, func(p *mpf.Process) error {
		if p.PID() == 0 {
			s, err := p.OpenSend("big")
			if err != nil {
				return err
			}
			defer s.Close()
			bar.Wait()
			return s.Send(payload)
		}
		r, err := p.OpenReceive("big", mpf.FCFS)
		if err != nil {
			return err
		}
		defer r.Close()
		bar.Wait()
		buf := make([]byte, len(payload))
		n, err := r.Receive(buf)
		if err != nil {
			return err
		}
		if n != len(payload) || !bytes.Equal(buf, payload) {
			return errors.New("large payload corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOptionsApply(t *testing.T) {
	f := newFac(t,
		mpf.WithMaxLNVCs(3),
		mpf.WithMaxProcesses(7),
		mpf.WithBlockSize(10), // the paper's block size
		mpf.WithBlocksPerProcess(16),
		mpf.WithFailFastSend(),
	)
	if f.MaxProcesses() != 7 {
		t.Fatalf("MaxProcesses = %d", f.MaxProcesses())
	}
	p, _ := f.Process(0)
	for i := 0; i < 3; i++ {
		if _, err := p.OpenSend(fmt.Sprintf("c%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.OpenSend("c3"); !errors.Is(err, mpf.ErrTooManyLNVCs) {
		t.Fatalf("err = %v, want ErrTooManyLNVCs", err)
	}
	// FailFast: a send exceeding the region must not block. A second
	// process joins an existing circuit for the check (the first
	// already holds the send connections).
	p2, err := f.Process(1)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := p2.OpenSend("c1")
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 7*16*10*2)
	if err := sc.Send(big); err == nil {
		t.Fatal("oversized fail-fast send succeeded")
	}
}

func TestTracerReceivesEvents(t *testing.T) {
	var mu sync.Mutex
	var events []mpf.Event
	tr := tracerFunc(func(ev mpf.Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	f := newFac(t, mpf.WithTracer(tr), mpf.WithMaxProcesses(2))
	p, _ := f.Process(0)
	s, _ := p.OpenSend("tr")
	r, _ := p.OpenReceive("tr", mpf.FCFS)
	s.Send([]byte("x"))
	r.Receive(make([]byte, 1))
	r.Check()
	s.Close()
	r.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 7 {
		t.Fatalf("traced %d events, want 7", len(events))
	}
	wantOps := []string{"open_send", "open_receive", "message_send", "message_receive", "check_receive", "close_send", "close_receive"}
	for i, ev := range events {
		if ev.Op.String() != wantOps[i] {
			t.Fatalf("event %d = %v, want %s", i, ev.Op, wantOps[i])
		}
	}
}

type tracerFunc func(mpf.Event)

func (f tracerFunc) Trace(ev mpf.Event) { f(ev) }

func TestCircuitIntrospection(t *testing.T) {
	f := newFac(t, mpf.WithMaxProcesses(3))
	p0, _ := f.Process(0)
	p1, _ := f.Process(1)
	p2, _ := f.Process(2)
	s, _ := p0.OpenSend("insp")
	p1.OpenReceive("insp", mpf.FCFS)
	p2.OpenReceive("insp", mpf.Broadcast)
	s.Send([]byte("one"))
	s.Send([]byte("two"))

	info, ok := f.Circuit("insp")
	if !ok {
		t.Fatal("circuit not found")
	}
	if info.Name != "insp" || info.Senders != 1 || info.FCFSRecvs != 1 || info.BcastRecvs != 1 {
		t.Fatalf("info = %+v", info)
	}
	if info.QueuedMsgs != 2 {
		t.Fatalf("QueuedMsgs = %d, want 2", info.QueuedMsgs)
	}
	if info.ReceiverProto[1] != mpf.FCFS || info.ReceiverProto[2] != mpf.Broadcast {
		t.Fatalf("protocols = %v", info.ReceiverProto)
	}
	if _, ok := f.Circuit("nonexistent"); ok {
		t.Fatal("phantom circuit")
	}
}

func TestStatsExposed(t *testing.T) {
	f := newFac(t, mpf.WithMaxProcesses(2))
	p, _ := f.Process(0)
	s, _ := p.OpenSend("st")
	s.Send(make([]byte, 100))
	st := f.Stats()
	if st.Sends != 1 || st.BytesSent != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBarrierHelper(t *testing.T) {
	b, err := mpf.Barrier(3)
	if err != nil {
		t.Fatal(err)
	}
	f := newFac(t, mpf.WithMaxProcesses(3))
	if err := f.Run(3, func(p *mpf.Process) error {
		for i := 0; i < 5; i++ {
			b.Wait()
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := mpf.Barrier(0); err == nil {
		t.Fatal("Barrier(0) accepted")
	}
}
