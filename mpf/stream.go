package mpf

import (
	"fmt"
	"io"
)

// Stream adapters: LNVCs carry discrete messages (as in the paper), but
// pipeline-style programs often want a byte-stream view. Writer frames a
// byte stream into messages on a send connection; Reader reassembles it
// on a receive connection. The framing reserves the zero-length message
// as the end-of-stream marker, so user data written through a Writer is
// delivered intact for any chunking.
//
// A Reader over an FCFS connection on a circuit with a single writer
// yields exactly the written byte sequence; multiple FCFS readers
// partition the stream at message granularity (a work-sharing byte
// sink), and Broadcast readers each see the full stream.

// DefaultChunk is Writer's default message size.
const DefaultChunk = 4096

// Writer adapts a send connection to io.WriteCloser.
type Writer struct {
	s     *SendConn
	chunk int
	err   error
}

// NewWriter creates a stream writer over s. chunk bounds the message
// size (DefaultChunk if <= 0).
func NewWriter(s *SendConn, chunk int) *Writer {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	return &Writer{s: s, chunk: chunk}
}

// maxBatchChunks bounds how many chunks one Write groups into a single
// LoanBatch. A batch must fit the shared region all at once (the
// batch's blocks are allocated in one transaction), so an unbounded
// group would turn a large write that used to stream chunk-by-chunk
// into an ErrMessageTooBig or a stall waiting for the whole region to
// drain; a bounded group keeps the batching win while still
// pipelining with the reader.
const maxBatchChunks = 16

// Write sends p as one or more messages, entirely on the loan plane —
// the Writer performs no ledger-counted payload copy: the caller's
// bytes move exactly once, straight into the loaned shared-memory
// spans where receivers will read them. A write that spans several
// chunks goes out in groups of up to maxBatchChunks through one
// LoanBatch each — one arena transaction, one circuit lock
// acquisition and one receiver wakeup per group, with no other
// sender's message interleaving it. Single-chunk writes ride a single
// Loan the same way. Write never sends a zero-length message (that is
// the EOF marker); an empty p is a no-op.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if len(p) == 0 {
		return 0, nil
	}
	if len(p) <= w.chunk {
		if err := w.sendViaLoan(p); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	// Cap each batch's block demand at a quarter of the region so a
	// batch never waits for the entire region to be free at once.
	arena := w.s.p.fac.c.Arena()
	maxBatchBytes := arena.NumBlocks() / 4 * arena.PayloadSize()
	written := 0
	var chunks [][]byte
	ns := make([]int, 0, maxBatchChunks)
	for written < len(p) {
		chunks = chunks[:0]
		batchBytes := 0
		end := written
		for end < len(p) && len(chunks) < maxBatchChunks {
			next := end + w.chunk
			if next > len(p) {
				next = len(p)
			}
			if len(chunks) > 0 && batchBytes+(next-end) > maxBatchBytes {
				break
			}
			chunks = append(chunks, p[end:next])
			batchBytes += next - end
			end = next
		}
		var err error
		if len(chunks) == 1 {
			err = w.sendViaLoan(chunks[0])
		} else {
			err = w.sendViaLoanBatch(chunks, ns)
		}
		if err != nil {
			return written, err
		}
		written = end
	}
	return written, nil
}

// sendViaLoan ships one chunk through the loan plane: allocate, write
// the caller's bytes in place through the loan's view, commit. The
// fill is production, not a ledger copy — the bytes enter the region
// exactly once.
func (w *Writer) sendViaLoan(chunk []byte) error {
	ln, err := w.s.Loan(len(chunk))
	if err != nil {
		w.err = err
		return err
	}
	ln.View().CopyFrom(chunk)
	if err := ln.Commit(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// sendViaLoanBatch ships a group of chunks as one LoanBatch: one arena
// transaction for every chain, in-place fills, one CommitAll.
func (w *Writer) sendViaLoanBatch(chunks [][]byte, ns []int) error {
	ns = ns[:0]
	for _, c := range chunks {
		ns = append(ns, len(c))
	}
	lb, err := w.s.LoanBatch(ns)
	if err != nil {
		w.err = err
		return err
	}
	for i, c := range chunks {
		lb.Fill(i, c)
	}
	if err := lb.CommitAll(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Close sends the end-of-stream marker — a zero-length message,
// shipped as a (necessarily empty) loan so even the marker stays off
// the copying plane. The underlying connection stays open (close it
// separately once the peer has drained — see the package note on
// circuit lifetime).
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	ln, err := w.s.Loan(0)
	if err != nil {
		w.err = err
		return err
	}
	if err := ln.Commit(); err != nil {
		w.err = err
		return err
	}
	w.err = io.ErrClosedPipe // further writes fail
	return nil
}

// Reader adapts a receive connection to io.Reader.
type Reader struct {
	r   *RecvConn
	buf []byte
	pos int
	n   int
	eof bool
	err error
}

// NewReader creates a stream reader over r. maxMsg must be at least the
// largest message the writer sends (Writer's chunk size); messages are
// truncated to it otherwise, corrupting the stream.
func NewReader(r *RecvConn, maxMsg int) *Reader {
	if maxMsg <= 0 {
		maxMsg = DefaultChunk
	}
	return &Reader{r: r, buf: make([]byte, maxMsg)}
}

// Read fills p from the message stream, blocking for the next message
// when its buffer is drained. A zero-length message yields io.EOF.
func (r *Reader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	if len(p) == 0 {
		return 0, nil
	}
	for r.pos == r.n {
		if r.eof {
			r.err = io.EOF
			return 0, io.EOF
		}
		n, err := r.r.Receive(r.buf)
		if err != nil {
			r.err = fmt.Errorf("mpf: stream read: %w", err)
			return 0, r.err
		}
		if n == 0 {
			r.eof = true
			r.err = io.EOF
			return 0, io.EOF
		}
		r.pos, r.n = 0, n
	}
	c := copy(p, r.buf[r.pos:r.n])
	r.pos += c
	return c, nil
}
