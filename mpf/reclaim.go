package mpf

// Dead-peer reclamation and the respawn supervisor (DESIGN.md §17).
//
// A child that dies mid-protocol strands four kinds of state: its
// table slot, the records queued in its rings, the views/loans its
// bridge holds pinned, and (under WithCredit) the credit blocks
// debited for its in-flight messages. Because the serving process owns
// the allocator and every descriptor (children are raw segment peers),
// all of that state is reachable from the parent — the blast radius of
// a child crash is bounded by construction, and reclamation is a
// parent-side walk:
//
//	mark the slot dead (generation-bound CAS — a recycled pid can
//	  never get a live newcomer reclaimed)
//	→ close the rings (wakes any bridge op parked on the corpse)
//	→ drain both rings, discarding the dead generation's records
//	→ close the bridge's circuit connections (the facility's
//	  orphan-restore path releases pinned state and refunds credit)
//	→ reformat the rings
//	→ CAS the slot back to free
//
// The ordering matters: pins and credit are restored before the rings
// are reformatted so no record that could still name a pinned window
// survives the reclaim, and the slot is freed last so no new claimant
// can arrive while its rings still hold a dead incarnation's records.
//
// Supervise drives ReclaimSlot from two detection paths: child exits
// observed via proc.ExecGroup.WatchDeaths (immediate), and a periodic
// kill(pid, 0) probe of slot owners for peers the parent did not spawn
// (or whose exits it somehow missed). With a respawn budget it then
// restarts crashed children into their reclaimed slots with backoff.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/shm"
)

// ReclaimReport describes one completed dead-peer reclamation.
type ReclaimReport struct {
	Slot int
	// Gen is the attach generation that was reclaimed.
	Gen uint32
	// Pid is the pid the dead incarnation had claimed the slot with.
	Pid uint32
	// Views counts in-flight payload records discarded from the rings
	// (VIEW/LOAN windows the dead child would have consumed) plus
	// queued circuit messages restored by closing the bridge receiver.
	Views uint64
	// Credits counts credit blocks refunded to the circuit ledger.
	Credits uint64
	// Elapsed is death-detection-to-slot-free latency.
	Elapsed time.Duration
}

// ReclaimSlot tears down the named incarnation of a slot after its
// owner died. The caller supplies the generation it observed when it
// decided the owner was dead; if the slot has since moved on (owner
// detached, new peer claimed), the generation-bound CAS fails and
// ReclaimSlot reports false without touching anything. On success the
// slot is free again, the rings are freshly formatted, every view the
// bridge held is released, the credit ledger is refunded, and the
// facility's PeerDeaths/ReclaimedViews/ReclaimedCredits/ReclaimLatency
// counters and the peer_reclaim trace op record the event.
func (s *ProcServer) ReclaimSlot(slot int, gen uint32) (ReclaimReport, bool) {
	start := time.Now()
	pid := s.table.SlotPid(slot)
	if !s.table.MarkDead(slot, gen) {
		return ReclaimReport{}, false
	}
	rep := ReclaimReport{Slot: slot, Gen: gen, Pid: pid}

	// Detach the bridge state so future bridge() calls bind to the next
	// incarnation; the snapshot is ours to tear down.
	b := &s.bridges[slot]
	b.mu.Lock()
	send, recv := b.send, b.recv
	down, up := b.down, b.up
	b.send, b.recv, b.down, b.up, b.gen = nil, nil, nil, nil, 0
	b.mu.Unlock()

	// The bridge may never have opened (death before first traffic);
	// the rings always exist in the table.
	var err error
	if down == nil {
		if down, err = s.table.DownRing(slot); err != nil {
			down = nil
		}
	}
	if up == nil {
		if up, err = s.table.UpRing(slot); err != nil {
			up = nil
		}
	}

	// Close first: any bridge goroutine parked on a ring wakes with
	// ErrRingClosed right now instead of waiting out its deadline, and
	// no new record can land while we drain.
	if down != nil {
		down.Close()
	}
	if up != nil {
		up.Close()
	}
	rep.Views += drainDead(down, gen)
	rep.Views += drainDead(up, gen)

	// Closing the bridge's circuit connections runs the facility's own
	// teardown: queued messages are discarded through the normal
	// reclaim path (restoring their blocks and credit), pinned state is
	// orphan-restored. Snapshot the ledger first so the refund is
	// attributable to this death.
	if recv != nil {
		if info, ok := s.fac.Circuit(fmt.Sprintf("xproc-%d", slot)); ok {
			rep.Credits = uint64(info.CreditUsed)
			rep.Views += uint64(info.QueuedMsgs)
		}
		recv.Close()
	}
	if send != nil {
		send.Close()
	}

	// Fresh rings for the next claimant, then — and only then — the
	// slot itself returns to the pool.
	if err := s.table.ReformatRings(slot); err != nil {
		// The slot stays dead: better a permanently lost slot than a
		// claimant on corrupt rings. This cannot happen short of a
		// corrupted table header.
		return rep, false
	}
	if !s.table.FreeSlot(slot, gen) {
		return rep, false
	}
	rep.Elapsed = time.Since(start)
	s.fac.c.NotePeerReclaim(int(pid), rep.Views, rep.Credits, rep.Elapsed)
	return rep, true
}

// drainDead empties a closed ring, counting the dead generation's
// payload-bearing records (VIEW and LOAN kinds — the in-flight windows
// the dead peer will never consume).
func drainDead(r *shm.XRing, gen uint32) uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for {
		rec, ok, err := r.TryPop()
		if err != nil || !ok {
			return n
		}
		if xtagGen(rec.Tag) != uint8(gen) {
			continue
		}
		switch xtagKind(rec.Tag) {
		case XTagView, XTagLoan:
			n++
		}
	}
}

// SuperviseConfig parameterises the crash supervisor.
type SuperviseConfig struct {
	// Respawn is the per-slot respawn budget: how many times a crashed
	// child may be restarted into its reclaimed slot. 0 reaps and
	// reclaims but never restarts.
	Respawn int
	// Backoff is the delay before the first respawn of a slot, doubling
	// on each subsequent respawn of the same slot (default 10ms).
	Backoff time.Duration
	// ProbeInterval is the period of the kill(pid, 0) liveness sweep
	// over attached slots (default 100ms; 0 keeps the default, negative
	// disables the sweep, leaving only exit-driven reaping).
	ProbeInterval time.Duration
	// RespawnEnv, when non-nil, supplies the extra environment for the
	// attempt'th respawn of slot (attempt counts from 1). Nil inherits
	// the group's per-child environment — note that re-arming the same
	// crash fault point would crash the replacement identically; chaos
	// tests pass a clean environment here.
	RespawnEnv func(slot, attempt int) []string
	// OnDeath, when non-nil, observes every reclaim the supervisor
	// performs. OnRespawn observes every successful restart.
	OnDeath   func(ReclaimReport)
	OnRespawn func(slot, attempt int)
}

// WithRespawn is the common SuperviseConfig: reap, reclaim, and
// restart each crashed child up to n times.
func WithRespawn(n int) SuperviseConfig { return SuperviseConfig{Respawn: n} }

// Supervisor watches an exec group's children (and the table's slots)
// for deaths, reclaims dead incarnations, and optionally respawns.
type Supervisor struct {
	s   *ProcServer
	g   *proc.ExecGroup
	cfg SuperviseConfig

	mu       sync.Mutex
	attempts map[int]int       // slot → respawns performed
	suspects map[int][2]uint32 // slot → (gen, pid) from last probe sweep
	stopped  bool
	stopC    chan struct{}
	watchOff func()
	wg       sync.WaitGroup
}

// Supervise starts a supervisor over the group's children. g may be
// nil for a probe-only reaper (peers the server did not spawn): then
// only the periodic liveness sweep runs and nothing is ever respawned.
// Stop the supervisor before closing the server.
func (s *ProcServer) Supervise(g *proc.ExecGroup, cfg SuperviseConfig) *Supervisor {
	if cfg.Backoff <= 0 {
		cfg.Backoff = 10 * time.Millisecond
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 100 * time.Millisecond
	}
	sup := &Supervisor{
		s:        s,
		g:        g,
		cfg:      cfg,
		attempts: make(map[int]int),
		suspects: make(map[int][2]uint32),
		stopC:    make(chan struct{}),
	}
	if g != nil {
		sup.watchOff = g.WatchDeaths(func(ch *proc.Child) { sup.onChildExit(ch) })
	}
	if cfg.ProbeInterval > 0 {
		sup.wg.Add(1)
		go sup.probeLoop()
	}
	return sup
}

// Stop halts death watching, probing and respawning. Already-running
// reclaims complete.
func (sup *Supervisor) Stop() {
	sup.mu.Lock()
	if sup.stopped {
		sup.mu.Unlock()
		return
	}
	sup.stopped = true
	sup.mu.Unlock()
	close(sup.stopC)
	if sup.watchOff != nil {
		sup.watchOff()
	}
	sup.wg.Wait()
}

// onChildExit handles an observed child exit: if the child's slot is
// still attached under the child's pid, its incarnation is reclaimed,
// and the child is respawned if budget remains. A clean exit after
// detach reclaims nothing (the slot is already detached) and does not
// consume respawn budget.
func (sup *Supervisor) onChildExit(ch *proc.Child) {
	slot := ch.Index
	st, gen := sup.s.table.SlotStateGen(slot)
	crashed := ch.Err() != nil
	if st == core.SlotAttached && sup.s.table.SlotPid(slot) == uint32(ch.Pid()) {
		// Died while attached: mid-claim, mid-traffic, or just before
		// detach. Generation-bound, so if this races a detach+reclaim
		// by a new peer the CAS inside ReclaimSlot fails harmlessly.
		if rep, ok := sup.s.ReclaimSlot(slot, gen); ok {
			crashed = true
			if sup.cfg.OnDeath != nil {
				sup.cfg.OnDeath(rep)
			}
		}
	}
	if !crashed {
		return
	}
	sup.respawn(slot)
}

// respawn restarts a crashed child into its (reclaimed) slot if budget
// remains, with per-slot exponential backoff.
func (sup *Supervisor) respawn(slot int) {
	if sup.g == nil || sup.cfg.Respawn <= 0 {
		return
	}
	sup.mu.Lock()
	attempt := sup.attempts[slot] + 1
	if sup.stopped || attempt > sup.cfg.Respawn {
		sup.mu.Unlock()
		return
	}
	sup.attempts[slot] = attempt
	sup.mu.Unlock()

	backoff := sup.cfg.Backoff << (attempt - 1)
	select {
	case <-time.After(backoff):
	case <-sup.stopC:
		return
	}
	var env []string
	if sup.cfg.RespawnEnv != nil {
		env = sup.cfg.RespawnEnv(slot, attempt)
	} else {
		env = []string{} // non-nil: do NOT re-inherit armed fault points
	}
	nc, err := sup.g.Respawn(slot, env)
	if err != nil {
		return
	}
	if err := sup.s.SendSegmentTo(nc.Conn, slot); err != nil {
		return
	}
	if sup.cfg.OnRespawn != nil {
		sup.cfg.OnRespawn(slot, attempt)
	}
}

// probeLoop is the kill(pid, 0) sweep: any attached slot whose
// recorded owner pid is gone on two consecutive sweeps is reclaimed.
// The confirmation sweep closes the claim-time window in which a
// slot's state word is already attached but its pid field still holds
// the previous (possibly dead) owner's pid.
func (sup *Supervisor) probeLoop() {
	defer sup.wg.Done()
	ticker := time.NewTicker(sup.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-sup.stopC:
			return
		case <-ticker.C:
		}
		for slot := 0; slot < sup.s.table.NSlots(); slot++ {
			st, gen := sup.s.table.SlotStateGen(slot)
			if st != core.SlotAttached {
				sup.clearSuspect(slot)
				continue
			}
			pid := sup.s.table.SlotPid(slot)
			if proc.Alive(int(pid)) {
				sup.clearSuspect(slot)
				continue
			}
			sup.mu.Lock()
			prev, suspected := sup.suspects[slot]
			sup.suspects[slot] = [2]uint32{gen, pid}
			sup.mu.Unlock()
			if !suspected || prev != [2]uint32{gen, pid} {
				continue // first sighting: confirm on the next sweep
			}
			sup.clearSuspect(slot)
			if rep, ok := sup.s.ReclaimSlot(slot, gen); ok {
				if sup.cfg.OnDeath != nil {
					sup.cfg.OnDeath(rep)
				}
				sup.respawn(slot)
			}
		}
	}
}

func (sup *Supervisor) clearSuspect(slot int) {
	sup.mu.Lock()
	delete(sup.suspects, slot)
	sup.mu.Unlock()
}
