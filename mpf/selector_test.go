package mpf

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestSelectorEventLoop is the facade's many-producers/one-event-loop
// round trip: every producer's stream is drained by a single goroutine
// multiplexing all circuits through one Selector.
func TestSelectorEventLoop(t *testing.T) {
	const (
		producers = 6
		perProd   = 150
	)
	fac, err := New(WithMaxProcesses(producers+1), WithMaxLNVCs(producers+4),
		WithBlocksPerProcess(512))
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()

	var got [producers]int64
	err = fac.Run(producers+1, func(p *Process) error {
		if p.PID() < producers { // producer
			// No handshake needed: messages sent before the event loop
			// joins are retained and inherited by the first receiver
			// (retention rule 5). The send connection stays open until
			// Shutdown, keeping the circuit alive across the gap.
			s, err := p.OpenSend(fmt.Sprintf("work-%d", p.PID()))
			if err != nil {
				return err
			}
			for k := 0; k < perProd; k++ {
				if err := s.Send([]byte{byte(p.PID()), byte(k)}); err != nil {
					return err
				}
			}
			return nil
		}
		// Event loop: drain every producer circuit through one Selector.
		sel, err := p.NewSelector()
		if err != nil {
			return err
		}
		defer sel.Close()
		conns := make(map[*RecvConn]int, producers)
		for i := 0; i < producers; i++ {
			rc, err := p.OpenReceive(fmt.Sprintf("work-%d", i), FCFS)
			if err != nil {
				return err
			}
			if err := sel.Add(rc); err != nil {
				return err
			}
			conns[rc] = i
		}
		if sel.Len() != producers {
			return fmt.Errorf("selector has %d circuits, want %d", sel.Len(), producers)
		}
		buf := make([]byte, 4)
		total := 0
		for total < producers*perProd {
			ready, err := sel.Wait()
			if err != nil {
				return fmt.Errorf("after %d messages: %w", total, err)
			}
			if len(ready) == 0 {
				return errors.New("Wait returned no ready connections and no error")
			}
			for _, rc := range ready {
				for {
					_, ok, err := rc.TryReceive(buf)
					if err != nil {
						return err
					}
					if !ok {
						break
					}
					atomic.AddInt64(&got[conns[rc]], 1)
					total++
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != perProd {
			t.Errorf("producer %d: event loop drained %d messages, want %d", i, got[i], perProd)
		}
	}
}

func TestSelectorFacadeValidation(t *testing.T) {
	fac, err := New(WithMaxProcesses(4))
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()
	p0, _ := fac.Process(0)
	p1, _ := fac.Process(1)
	rc, err := p1.OpenReceive("v", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := p0.NewSelector()
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	// Foreign process's connection.
	if err := sel.Add(rc); !errors.Is(err, ErrBadProcess) {
		t.Fatalf("foreign add: %v", err)
	}
	sel1, _ := p1.NewSelector()
	defer sel1.Close()
	if err := sel1.Add(rc); err != nil {
		t.Fatal(err)
	}
	if err := sel1.Add(rc); !errors.Is(err, ErrAlreadyOpen) {
		t.Fatalf("duplicate add: %v", err)
	}
	if _, err := sel1.WaitDeadline(30 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("deadline: %v", err)
	}
	if err := sel1.Remove(rc); err != nil {
		t.Fatal(err)
	}
	if err := sel1.Remove(rc); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("double remove: %v", err)
	}
	if err := sel1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sel1.Add(rc); !errors.Is(err, ErrSelectorClosed) {
		t.Fatalf("add after close: %v", err)
	}
}

// TestSelectorConnectionClosedWhileParked checks the facade surfaces
// the close race as ErrNotConnected and prunes the dead entry.
func TestSelectorConnectionClosedWhileParked(t *testing.T) {
	fac, err := New(WithMaxProcesses(4))
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()
	p0, _ := fac.Process(0)
	p1, _ := fac.Process(1)
	if _, err := p0.OpenSend("cr"); err != nil {
		t.Fatal(err)
	}
	rc, err := p1.OpenReceive("cr", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := p1.NewSelector()
	defer sel.Close()
	if err := sel.Add(rc); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := sel.Wait()
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrNotConnected) {
			t.Fatalf("parked Wait returned %v, want ErrNotConnected", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked Selector.Wait hung across connection close")
	}
	if sel.Len() != 0 {
		t.Fatalf("dead registration survived: len=%d", sel.Len())
	}
}
