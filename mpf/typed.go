package mpf

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"
)

// Typed adapters: MPF circuits carry raw bytes, as in the paper's C
// interface. TypedSender and TypedReceiver layer Go values on top using
// encoding/gob. Every message is a self-contained gob stream, so FCFS
// receivers can decode any message regardless of which sibling consumed
// the previous one, and receivers can join mid-conversation.

// TypedSender sends values of type T over a send connection.
type TypedSender[T any] struct {
	s   *SendConn
	buf bytes.Buffer
}

// NewTypedSender wraps s.
func NewTypedSender[T any](s *SendConn) *TypedSender[T] {
	return &TypedSender[T]{s: s}
}

// Send encodes v as one message, shipped through the loan plane: the
// encoded bytes are written in place into loaned blocks and committed
// — they enter the shared region exactly once, with no ledger-counted
// payload copy. Not safe for concurrent use (a "process" is a single
// thread of control, as in the paper).
func (t *TypedSender[T]) Send(v T) error {
	t.buf.Reset()
	if err := gob.NewEncoder(&t.buf).Encode(&v); err != nil {
		return fmt.Errorf("mpf: typed send encode: %w", err)
	}
	ln, err := t.s.Loan(t.buf.Len())
	if err != nil {
		return err
	}
	ln.View().CopyFrom(t.buf.Bytes())
	return ln.Commit()
}

// SendBatch encodes each value as its own self-contained message and
// transfers them as one LoanBatch: one arena transaction for every
// payload chain, in-place fills, and one circuit lock acquisition with
// one receiver wakeup for the lot — no interleaving from other
// senders, no ledger-counted payload copy. Not safe for concurrent
// use.
func (t *TypedSender[T]) SendBatch(vs []T) error {
	if len(vs) == 0 {
		return nil
	}
	t.buf.Reset()
	ns := make([]int, len(vs))
	offs := make([]int, len(vs)+1)
	for i := range vs {
		// Each value gets a fresh encoder so every message is an
		// independent gob stream, exactly like single Send.
		if err := gob.NewEncoder(&t.buf).Encode(&vs[i]); err != nil {
			return fmt.Errorf("mpf: typed batch encode: %w", err)
		}
		offs[i+1] = t.buf.Len()
		ns[i] = offs[i+1] - offs[i]
	}
	lb, err := t.s.LoanBatch(ns)
	if err != nil {
		return err
	}
	all := t.buf.Bytes()
	for i := range vs {
		lb.Fill(i, all[offs[i]:offs[i+1]])
	}
	return lb.CommitAll()
}

// Conn returns the underlying connection (for Close).
func (t *TypedSender[T]) Conn() *SendConn { return t.s }

// TypedReceiver receives values of type T from a receive connection.
type TypedReceiver[T any] struct {
	r   *RecvConn
	buf []byte
}

// NewTypedReceiver wraps r. maxMsg bounds the encoded size of one value
// (values encoding beyond it fail to decode rather than silently
// truncate).
func NewTypedReceiver[T any](r *RecvConn, maxMsg int) *TypedReceiver[T] {
	if maxMsg <= 0 {
		maxMsg = DefaultChunk
	}
	return &TypedReceiver[T]{r: r, buf: make([]byte, maxMsg)}
}

// Receive blocks for the next message and decodes it.
func (t *TypedReceiver[T]) Receive() (T, error) {
	var v T
	n, err := t.r.Receive(t.buf)
	if err != nil {
		return v, err
	}
	return v, t.decode(n, &v)
}

// ReceiveDeadline is Receive bounded by d.
func (t *TypedReceiver[T]) ReceiveDeadline(d time.Duration) (T, error) {
	var v T
	n, err := t.r.ReceiveDeadline(t.buf, d)
	if err != nil {
		return v, err
	}
	return v, t.decode(n, &v)
}

// TryReceive decodes a message if one is available.
func (t *TypedReceiver[T]) TryReceive() (T, bool, error) {
	var v T
	n, ok, err := t.r.TryReceive(t.buf)
	if err != nil || !ok {
		return v, ok, err
	}
	if err := t.decode(n, &v); err != nil {
		return v, true, err
	}
	return v, true, nil
}

func (t *TypedReceiver[T]) decode(n int, v *T) error {
	if n == len(t.buf) {
		// The copy filled the buffer exactly — the encoded value may
		// have been truncated and would decode to garbage.
		return fmt.Errorf("mpf: typed receive: message reached the %d-byte buffer limit (possible truncation)", n)
	}
	if err := gob.NewDecoder(bytes.NewReader(t.buf[:n])).Decode(v); err != nil {
		return fmt.Errorf("mpf: typed receive decode: %w", err)
	}
	return nil
}

// Conn returns the underlying connection (for Check and Close).
func (t *TypedReceiver[T]) Conn() *RecvConn { return t.r }
