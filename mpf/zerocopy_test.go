package mpf

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestFacadeLoanViewRoundtrip(t *testing.T) {
	fac, err := New(WithMaxProcesses(2))
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	done := make(chan error, 1)
	err = fac.Run(2, func(p *Process) error {
		if p.PID() == 0 {
			s, err := p.OpenSend("zc")
			if err != nil {
				return err
			}
			ln, err := s.Loan(len(payload))
			if err != nil {
				return err
			}
			defer ln.Abort() // no-op after Commit
			b, ok := ln.Bytes()
			if !ok {
				return errors.New("loan not contiguous under span allocation")
			}
			copy(b, payload)
			if err := ln.Commit(); err != nil {
				return err
			}
			return <-done // hold the circuit open until the reader is done
		}
		r, err := p.OpenReceive("zc", FCFS)
		if err != nil {
			return err
		}
		defer func() { done <- r.Close() }()
		v, err := r.ReceiveView()
		if err != nil {
			return err
		}
		defer v.Release()
		b, ok := v.Bytes()
		if !ok {
			return errors.New("view not contiguous under span allocation")
		}
		if !bytes.Equal(b, payload) {
			return errors.New("view shows wrong payload")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := fac.Stats()
	if st.LoanSends != 1 || st.ViewReceives != 1 {
		t.Errorf("LoanSends=%d ViewReceives=%d, want 1 and 1", st.LoanSends, st.ViewReceives)
	}
	if st.PayloadCopiesIn != 0 || st.PayloadCopiesOut != 0 {
		t.Errorf("copies in/out = %d/%d, want 0/0 on the zero-copy plane",
			st.PayloadCopiesIn, st.PayloadCopiesOut)
	}
}

// TestBroadcastFanOutZeroReceiveCopies is the acceptance check for the
// zero-copy receive plane: eight BROADCAST receivers consume the same
// stream through views and the facility's receive-side copy counter
// stays at zero — one shared payload instance, not eight copies.
func TestBroadcastFanOutZeroReceiveCopies(t *testing.T) {
	const (
		nRecv = 8
		nMsgs = 50
		size  = 4096
	)
	fac, err := New(WithMaxProcesses(nRecv + 1))
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()

	var ready, drained sync.WaitGroup
	ready.Add(nRecv)
	drained.Add(nRecv)
	err = fac.Run(nRecv+1, func(p *Process) error {
		if p.PID() == 0 {
			s, err := p.OpenSend("fan")
			if err != nil {
				return err
			}
			ready.Wait() // every receiver connected: all see the stream
			for i := 0; i < nMsgs; i++ {
				ln, err := s.Loan(size)
				if err != nil {
					return err
				}
				b, ok := ln.Bytes()
				if !ok {
					return errors.New("loan not contiguous")
				}
				for j := range b {
					b[j] = byte(i)
				}
				if err := ln.Commit(); err != nil {
					return err
				}
			}
			drained.Wait()
			return s.Close()
		}
		r, err := p.OpenReceive("fan", Broadcast)
		if err != nil {
			return err
		}
		ready.Done()
		for i := 0; i < nMsgs; i++ {
			v, err := r.ReceiveView()
			if err != nil {
				return err
			}
			b, ok := v.Bytes()
			if !ok {
				v.Release()
				return errors.New("view not contiguous")
			}
			if len(b) != size || b[0] != byte(i) || b[size-1] != byte(i) {
				v.Release()
				return errors.New("view shows wrong message")
			}
			v.Release()
		}
		drained.Done()
		return r.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	st := fac.Stats()
	if st.PayloadCopiesOut != 0 {
		t.Errorf("PayloadCopiesOut = %d, want 0: BROADCAST fan-out must not copy", st.PayloadCopiesOut)
	}
	if want := uint64(nRecv * nMsgs); st.ViewReceives != want {
		t.Errorf("ViewReceives = %d, want %d", st.ViewReceives, want)
	}
	if st.PayloadCopiesIn != 0 {
		t.Errorf("PayloadCopiesIn = %d, want 0: loans must not copy", st.PayloadCopiesIn)
	}
}

// TestWriterRidesTheLoanPlane pins the Writer rebase: single-chunk
// writes go out as loans, the caller's bytes written in place — no
// ledger-counted payload copy, not Send's build-and-copy.
func TestWriterRidesTheLoanPlane(t *testing.T) {
	fac, err := New(WithMaxProcesses(2))
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()
	p, _ := fac.Process(0)
	s, err := p.OpenSend("stream")
	if err != nil {
		t.Fatal(err)
	}
	rp, _ := fac.Process(1)
	r, err := rp.OpenReceive("stream", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(s, 1024)
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 3)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	st := fac.Stats()
	if st.LoanSends != 1 {
		t.Errorf("LoanSends = %d, want 1 (Writer chunk rides the loan plane)", st.LoanSends)
	}
	if st.PayloadCopiesIn != 0 {
		t.Errorf("PayloadCopiesIn = %d, want 0 (the chunk is produced in place, not copied)", st.PayloadCopiesIn)
	}
	buf := make([]byte, 2048)
	n, err := r.Receive(buf)
	if err != nil || !bytes.Equal(buf[:n], data) {
		t.Fatalf("stream payload corrupted: n=%d err=%v", n, err)
	}
}

func TestLoanAbortKeepsFacadeUsable(t *testing.T) {
	fac, err := New(WithMaxProcesses(1), WithBlocksPerProcess(16))
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()
	p, _ := fac.Process(0)
	s, err := p.OpenSend("ab")
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.OpenReceive("ab", FCFS)
	if err != nil {
		t.Fatal(err)
	}
	// Abort every loan: no blocks may leak, and the region stays usable.
	for i := 0; i < 100; i++ {
		ln, err := s.Loan(512)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		ln.Abort()
		if err := ln.Commit(); !errors.Is(err, ErrLoanDone) {
			t.Fatalf("iter %d: Commit after Abort = %v", i, err)
		}
	}
	if err := s.Send([]byte("still works")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if n, err := r.Receive(buf); err != nil || string(buf[:n]) != "still works" {
		t.Fatalf("post-abort receive: %q, %v", buf[:n], err)
	}
}

func TestClassicChainsFacadeOption(t *testing.T) {
	fac, err := New(WithMaxProcesses(1), WithClassicChains(), WithBlockSize(16))
	if err != nil {
		t.Fatal(err)
	}
	defer fac.Shutdown()
	p, _ := fac.Process(0)
	s, _ := p.OpenSend("classic")
	r, _ := p.OpenReceive("classic", FCFS)
	if err := s.Send(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	v, err := r.ReceiveView()
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	if _, ok := v.Bytes(); ok {
		t.Fatal("classic chains yielded a contiguous multi-block view")
	}
	total := 0
	v.Segments(func(seg []byte) bool { total += len(seg); return true })
	if total != 100 {
		t.Fatalf("segments cover %d bytes, want 100", total)
	}
}
