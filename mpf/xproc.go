package mpf

// Cross-process MPF. The paper's facility served "a group of Unix
// processes" sharing one mapped region; this file is that deployment
// shape for the port. One process — the server — runs the full
// facility over an arena carved out of a memfd segment (ServeProc).
// Child processes receive the segment fd and a layout handshake over
// an inherited unix socket (AttachProc), map the same physical pages
// at their own base address, claim a descriptor-table slot, and from
// then on speak only through in-segment SPSC rings whose records carry
// segment offsets. Payload bytes are written and read in place in the
// shared mapping — the copy ledger stays at zero across the process
// boundary, which examples/procdemo and the CI cross-process leg
// assert.
//
// The division of labour (DESIGN.md §15): the server owns the arena
// allocator and every LNVC descriptor; children are raw segment peers.
// A bridge goroutine per child translates between the facility's
// zero-copy plane and the child's rings:
//
//	down:  Loan → fill → Commit → ReceiveView → ring VIEW record →
//	       child reads payload in place, ACKs → Release
//	up:    Loan → ring LOAN record → child fills payload in place,
//	       FILLED → Commit → ReceiveView → verify → Release
//
// Both directions move every payload byte through the circuit exactly
// once with zero copies on either side of the boundary.
//
// Crash robustness (DESIGN.md §17): every ring record's Tag carries
// the slot's attach generation in its high byte, so records from a
// dead incarnation are recognisably stale and are discarded instead of
// corrupting the next claimant's protocol. Bridge ring waits carry an
// abort probe against the slot's state word (a reaped peer surfaces as
// ErrPeerDead, not a 30-second hang), and the child's worker loop
// aborts when its parent process disappears. The reaper/reclaimer
// lives in reclaim.go; the fault points threaded through the child
// path (child-attach, child-claim, child-ack, child-fill) are what the
// chaos harness arms to kill children at exact protocol steps.

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/affinity"
	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/proc"
	"repro/internal/shm"
)

// Ring record kinds of the bridge/worker protocol, carried in the low
// byte of a record's Tag (the high byte is the attach generation —
// see xtag).
const (
	// XTagView announces a committed message's payload window to the
	// child (down direction); Word is the payload checksum.
	XTagView uint16 = 1
	// XTagLoan offers the child an unfilled loan window to write (up
	// direction); Word is the message sequence number.
	XTagLoan uint16 = 2
	// XTagAck acknowledges a VIEW after the child verified the payload
	// in place; Word echoes the checksum.
	XTagAck uint16 = 3
	// XTagFilled reports a LOAN filled in place; Word is the checksum
	// the child computed over what it wrote.
	XTagFilled uint16 = 4
	// XTagDone tells the child to detach and exit.
	XTagDone uint16 = 5
)

// xtag stamps a record kind with the slot's attach generation (low 8
// bits of the generation in the Tag's high byte). A record pushed by
// incarnation G and popped by incarnation G' ≠ G fails the generation
// check and is discarded — the defense that makes ring reuse after a
// peer death safe even if a stale producer got one last push in.
func xtag(kind uint16, gen uint32) uint16 { return kind&0xFF | uint16(gen&0xFF)<<8 }

// xtagKind extracts the record kind from a tag.
func xtagKind(tag uint16) uint16 { return tag & 0xFF }

// xtagGen extracts the generation byte from a tag.
func xtagGen(tag uint16) uint8 { return uint8(tag >> 8) }

// ErrNoSharedBackend re-exports the shm gate so callers can probe for
// cross-process support without importing internal packages.
var ErrNoSharedBackend = shm.ErrNoSharedBackend

// ErrPeerDead re-exports the shm sentinel: a cross-process operation
// was aborted because the peer on the other side of the segment has
// been declared dead (process gone or slot reaped).
var ErrPeerDead = shm.ErrPeerDead

// ErrHandshakeTimeout re-exports the shm sentinel: the attach
// handshake frame never arrived — the parent died before serving the
// segment, or never intended to.
var ErrHandshakeTimeout = shm.ErrHandshakeTimeout

// xprocDeadline bounds every blocking ring operation of the bridge and
// worker loops so a dead peer surfaces as an error, not a hang.
const xprocDeadline = 30 * time.Second

// ServeConfig parameterises ServeProc.
type ServeConfig struct {
	// Children is the number of descriptor-table slots (one per child
	// process).
	Children int
	// RingCap is the per-direction ring capacity in records (power of
	// two, default 64).
	RingCap int
	// Options configure the underlying facility exactly as New does.
	Options []Option
}

// ProcServer is the serving side of a cross-process facility.
type ProcServer struct {
	fac      *Facility
	seg      *shm.Segment
	table    *core.SegTable
	gen      uint64
	tableOff int64
	arenaOff int64
	acfg     shm.Config
	bridges  []bridgeState
}

// bridgeState is one slot's server-side bridge: the facility
// connections, ring handles and the attach generation they were bound
// to. The mutex serialises lazy open (bridge) against teardown
// (ReclaimSlot); the traffic loops work on value snapshots
// (bridgeConn) so a concurrent reclaim can reset the state without
// racing them.
type bridgeState struct {
	mu   sync.Mutex
	send *SendConn
	recv *RecvConn
	down *shm.XRing
	up   *shm.XRing
	gen  uint32
}

// bridgeConn is the immutable per-use snapshot of a bridge.
type bridgeConn struct {
	send *SendConn
	recv *RecvConn
	down *shm.XRing
	up   *shm.XRing
	gen  uint32
}

// ServeProc creates a memfd-backed facility ready for child processes:
// segment, descriptor table, rings, and the facility itself with its
// arena carved out of the segment. Fails with ErrNoSharedBackend where
// the platform has no shared segments.
func ServeProc(sc ServeConfig) (*ProcServer, error) {
	if sc.Children < 1 {
		return nil, fmt.Errorf("mpf: ServeProc with %d children", sc.Children)
	}
	if sc.RingCap == 0 {
		sc.RingCap = 64
	}
	var cfg core.Config
	for _, o := range sc.Options {
		o(&cfg)
	}
	if cfg.MaxProcesses < sc.Children+1 {
		// One facility pid per bridge plus pid 0 for the application.
		cfg.MaxProcesses = sc.Children + 1
	}
	acfg := core.ArenaConfig(cfg)

	tableOff := int64(64)
	arenaOff := shm.AlignUp(tableOff + core.SegTableBytes(sc.Children, sc.RingCap))
	segSize := arenaOff + shm.AlignUp(acfg.Bytes())
	seg, err := shm.NewSharedSegment("mpf-arena", segSize)
	if err != nil {
		return nil, err
	}
	gen := uint64(time.Now().UnixNano())<<8 ^ uint64(os.Getpid())
	table, err := core.InitSegTable(seg, tableOff, sc.Children, sc.RingCap, gen)
	if err != nil {
		seg.Close()
		return nil, err
	}
	cfg.ArenaMem = seg.At(arenaOff, acfg.Bytes())
	c, err := core.Init(cfg)
	if err != nil {
		seg.Close()
		return nil, err
	}
	return &ProcServer{
		fac:      &Facility{c: c},
		seg:      seg,
		table:    table,
		gen:      gen,
		tableOff: tableOff,
		arenaOff: arenaOff,
		acfg:     acfg,
		bridges:  make([]bridgeState, sc.Children),
	}, nil
}

// Facility returns the served facility (fully usable in-process too).
func (s *ProcServer) Facility() *Facility { return s.fac }

// Segment exposes the backing segment (tests, layout assertions).
func (s *ProcServer) Segment() *shm.Segment { return s.seg }

// Table exposes the in-segment descriptor table.
func (s *ProcServer) Table() *core.SegTable { return s.table }

// Handshake builds the attach frame for the given slot; SendSegment
// stamps the segment size.
func (s *ProcServer) Handshake(slot int) shm.Handshake {
	var flags uint32
	if s.acfg.Spans {
		flags |= shm.HandshakeSpans
	}
	return shm.Handshake{
		Generation: s.gen,
		TableOff:   s.tableOff,
		ArenaOff:   s.arenaOff,
		BlockSize:  int32(s.acfg.BlockSize),
		NumBlocks:  int32(s.acfg.NumBlocks),
		Slot:       int32(slot),
		Flags:      flags,
	}
}

// SendSegmentTo runs the server half of the attach handshake for slot
// over an arbitrary unix socket — the hook the in-process tests use;
// Spawn does this over each child's inherited socket.
func (s *ProcServer) SendSegmentTo(conn *net.UnixConn, slot int) error {
	return shm.SendSegment(conn, s.seg, s.Handshake(slot))
}

// Spawn execs n children of bin (one table slot each) and performs the
// fd-passing handshake with every one. n must not exceed the table's
// slot count. When the facility was configured with WithAffinity, each
// child process is pinned to its own CPU core (slot modulo the CPU
// count) best-effort: restricted runners leave children floating.
func (s *ProcServer) Spawn(n int, bin string, args []string, extraEnv []string) (*proc.ExecGroup, error) {
	return s.SpawnEnv(n, bin, args, func(int) []string { return extraEnv })
}

// SpawnEnv is Spawn with a per-child environment — the chaos harness
// arms crash fault points (faultpoint.EnvVar) in its victim children
// and not the survivors.
func (s *ProcServer) SpawnEnv(n int, bin string, args []string, envFor func(i int) []string) (*proc.ExecGroup, error) {
	if n > s.table.NSlots() {
		return nil, fmt.Errorf("mpf: spawning %d children for %d slots", n, s.table.NSlots())
	}
	g, err := proc.StartGroupEnv(n, bin, args, envFor)
	if err != nil {
		return nil, err
	}
	pin := s.fac.c.Config().Affinity
	for i := 0; i < n; i++ {
		if pin {
			if p := g.Child(i).Cmd.Process; p != nil {
				// Advisory: a cpuset that forbids the pin leaves the
				// child floating, exactly like an unpinned run.
				affinity.PinPID(p.Pid, i)
			}
		}
		if err := s.SendSegmentTo(g.Child(i).Conn, i); err != nil {
			g.Kill()
			return nil, fmt.Errorf("mpf: handshake with child %d: %w", i, err)
		}
	}
	return g, nil
}

// bridge lazily opens slot i's facility connections and ring handles,
// first waiting (bounded) for a peer to claim the slot so the bridge
// binds to a definite attach generation. Bridge pid i+1 holds both
// ends of circuit "xproc-i": the loop-back shape means every payload
// crosses the circuit queue exactly once in each phase.
func (s *ProcServer) bridge(slot int) (bridgeConn, error) {
	b := &s.bridges[slot]
	b.mu.Lock()
	if b.send != nil {
		c := bridgeConn{send: b.send, recv: b.recv, down: b.down, up: b.up, gen: b.gen}
		b.mu.Unlock()
		return c, nil
	}
	b.mu.Unlock()

	// Wait for the peer to claim the slot: the generation the bridge
	// captures must be the incarnation it will talk to, not a guess
	// made before the child arrived.
	gen, err := s.waitClaim(slot, xprocDeadline)
	if err != nil {
		return bridgeConn{}, err
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.send != nil { // raced with another opener
		return bridgeConn{send: b.send, recv: b.recv, down: b.down, up: b.up, gen: b.gen}, nil
	}
	p, err := s.fac.Process(slot + 1)
	if err != nil {
		return bridgeConn{}, err
	}
	name := fmt.Sprintf("xproc-%d", slot)
	send, err := p.OpenSend(name)
	if err != nil {
		return bridgeConn{}, err
	}
	recv, err := p.OpenReceive(name, FCFS)
	if err != nil {
		send.Close()
		return bridgeConn{}, err
	}
	down, err := s.table.DownRing(slot)
	if err == nil {
		b.up, err = s.table.UpRing(slot)
	}
	if err != nil {
		send.Close()
		recv.Close()
		return bridgeConn{}, err
	}
	b.send, b.recv, b.down, b.gen = send, recv, down, gen
	return bridgeConn{send: b.send, recv: b.recv, down: b.down, up: b.up, gen: b.gen}, nil
}

// waitClaim polls slot until a peer holds it attached, returning the
// attach generation. ErrPeerDead reports a slot that went dead while
// waiting; ErrTimeout-shaped failure reports nobody ever came.
func (s *ProcServer) waitClaim(slot int, timeout time.Duration) (uint32, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, gen := s.table.SlotStateGen(slot)
		switch st {
		case core.SlotAttached:
			return gen, nil
		case core.SlotDead:
			return 0, fmt.Errorf("mpf: slot %d: %w", slot, ErrPeerDead)
		}
		if !time.Now().Before(deadline) {
			return 0, fmt.Errorf("mpf: slot %d never claimed within %v", slot, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// slotAbort builds the liveness probe for ring waits bound to one
// incarnation: the moment the slot leaves the attached state or moves
// to another generation, blocked bridge operations fail with
// ErrPeerDead instead of waiting out their full deadline.
func (s *ProcServer) slotAbort(slot int, gen uint32) func() error {
	return func() error {
		st, g := s.table.SlotStateGen(slot)
		if st != core.SlotAttached || g != gen {
			return fmt.Errorf("mpf: slot %d gen %d: %w", slot, gen, ErrPeerDead)
		}
		return nil
	}
}

// xsum is the protocol's payload checksum: cheap, order-sensitive, and
// computed independently on both sides of the process boundary.
func xsum(b []byte) uint16 {
	var s uint32
	for _, c := range b {
		s = s*31 + uint32(c)
	}
	return uint16(s ^ s>>16)
}

// fillPattern writes the deterministic payload for (slot, seq): what
// the bridge writes down is what the child re-derives, and vice versa.
func fillPattern(b []byte, slot, seq int) {
	x := uint32(slot)*2654435761 + uint32(seq)*40503 + 1
	for i := range b {
		x = x*1664525 + 1013904223
		b[i] = byte(x >> 24)
	}
}

// contiguousLoan takes a loan whose payload is one contiguous span —
// the demo and benchmark protocol ships single-window records. Span
// mode with uniform message sizes cannot fragment below span
// granularity, so this does not fail in steady state.
func contiguousLoan(sc *SendConn, n int) (*Loan, []byte, error) {
	ln, err := sc.Loan(n)
	if err != nil {
		return nil, nil, err
	}
	buf, ok := ln.Bytes()
	if !ok {
		ln.Abort()
		return nil, nil, errors.New("mpf: loan payload fragmented; use span mode with uniform sizes")
	}
	return ln, buf, nil
}

// deadErr folds teardown-shaped failures onto ErrPeerDead when the
// abort probe confirms the incarnation is gone. A reclaim racing a
// bridge op can surface as ErrRingClosed (the reclaim closed the ring
// first) or as a closed-connection error (the reclaim closed the
// circuit first) depending on the interleaving; callers retrying after
// a respawn need one error to key on, not three.
func deadErr(err error, abort func() error) error {
	if err == nil {
		return nil
	}
	if aerr := abort(); aerr != nil {
		return aerr
	}
	return err
}

// popFor pops from the ring until a record of this bridge's generation
// arrives, discarding stale-generation leftovers from reclaimed
// incarnations (defense in depth: reclamation reformats the rings, so
// stale records require a zombie producer racing the reclaim).
func (b bridgeConn) popFor(r *shm.XRing, abort func() error) (shm.Record, error) {
	for {
		rec, err := r.PopAbort(time.Now().Add(xprocDeadline), abort)
		if err != nil {
			return shm.Record{}, err
		}
		if xtagGen(rec.Tag) == uint8(b.gen) {
			return rec, nil
		}
	}
}

// BridgeDown runs the down phase for one slot: msgs messages of size
// bytes each, committed through the circuit, exported to the child as
// VIEW records, acknowledged, released. Returns the number of payload
// round trips completed.
func (s *ProcServer) BridgeDown(slot, msgs, size int) (int, error) {
	b, err := s.bridge(slot)
	if err != nil {
		return 0, err
	}
	abort := s.slotAbort(slot, b.gen)
	done := 0
	for seq := 0; seq < msgs; seq++ {
		ln, buf, err := contiguousLoan(b.send, size)
		if err != nil {
			return done, deadErr(err, abort)
		}
		fillPattern(buf, slot, seq)
		sum := xsum(buf)
		if err := ln.Commit(); err != nil {
			return done, deadErr(err, abort)
		}
		v, err := b.recv.ReceiveViewDeadline(xprocDeadline)
		if err != nil {
			return done, deadErr(err, abort)
		}
		pay, ok := v.Bytes()
		if !ok {
			v.Release()
			return done, errors.New("mpf: view fragmented in span mode")
		}
		off, ok := s.seg.OffsetOf(pay)
		if !ok {
			v.Release()
			return done, errors.New("mpf: view payload does not alias the shared segment")
		}
		rec := shm.Record{Off: off, Len: int32(len(pay)), Tag: xtag(XTagView, b.gen), Word: sum}
		if err := b.down.PushAbort(rec, time.Now().Add(xprocDeadline), abort); err != nil {
			v.Release()
			return done, deadErr(err, abort)
		}
		ack, err := b.popFor(b.up, abort)
		v.Release()
		if err != nil {
			return done, deadErr(err, abort)
		}
		if xtagKind(ack.Tag) != XTagAck || ack.Word != sum {
			return done, fmt.Errorf("mpf: slot %d seq %d: child acked tag %d sum %#x, want tag %d sum %#x",
				slot, seq, xtagKind(ack.Tag), ack.Word, XTagAck, sum)
		}
		done++
	}
	return done, nil
}

// BridgeUp runs the up phase for one slot: msgs loans offered to the
// child, filled in place across the process boundary, committed, and
// verified through the receive view. Returns the round trips
// completed.
func (s *ProcServer) BridgeUp(slot, msgs, size int) (int, error) {
	b, err := s.bridge(slot)
	if err != nil {
		return 0, err
	}
	abort := s.slotAbort(slot, b.gen)
	done := 0
	for seq := 0; seq < msgs; seq++ {
		ln, buf, err := contiguousLoan(b.send, size)
		if err != nil {
			return done, deadErr(err, abort)
		}
		off, ok := s.seg.OffsetOf(buf)
		if !ok {
			ln.Abort()
			return done, errors.New("mpf: loan payload does not alias the shared segment")
		}
		rec := shm.Record{Off: off, Len: int32(len(buf)), Tag: xtag(XTagLoan, b.gen), Word: uint16(seq)}
		if err := b.down.PushAbort(rec, time.Now().Add(xprocDeadline), abort); err != nil {
			ln.Abort()
			return done, deadErr(err, abort)
		}
		filled, err := b.popFor(b.up, abort)
		if err != nil {
			ln.Abort()
			return done, deadErr(err, abort)
		}
		if xtagKind(filled.Tag) != XTagFilled {
			ln.Abort()
			return done, fmt.Errorf("mpf: slot %d seq %d: child sent tag %d, want FILLED", slot, seq, xtagKind(filled.Tag))
		}
		if err := ln.Commit(); err != nil {
			return done, deadErr(err, abort)
		}
		v, err := b.recv.ReceiveViewDeadline(xprocDeadline)
		if err != nil {
			return done, deadErr(err, abort)
		}
		pay, _ := v.Bytes()
		sum := xsum(pay)
		v.Release()
		if sum != filled.Word {
			return done, fmt.Errorf("mpf: slot %d seq %d: child-filled payload sums %#x, child said %#x",
				slot, seq, sum, filled.Word)
		}
		done++
	}
	return done, nil
}

// RingWaitStats sums the waiter counters of every bridge's ring
// handles: spin polls, kernel futex sleeps, and wake syscalls issued
// on the serving side. The cross-process benchmark records these per
// message — a waiter protocol regressing to busy-spin shows up here.
func (s *ProcServer) RingWaitStats() shm.WaitStats {
	var total shm.WaitStats
	add := func(w shm.WaitStats) {
		total.Polls += w.Polls
		total.Sleeps += w.Sleeps
		total.Wakes += w.Wakes
	}
	for i := range s.bridges {
		b := &s.bridges[i]
		b.mu.Lock()
		down, up := b.down, b.up
		b.mu.Unlock()
		if down != nil {
			data, space := down.WaitStats()
			add(data)
			add(space)
		}
		if up != nil {
			data, space := up.WaitStats()
			add(data)
			add(space)
		}
	}
	return total
}

// FinishSlot tells the child on slot to detach and exit.
func (s *ProcServer) FinishSlot(slot int) error {
	b, err := s.bridge(slot)
	if err != nil {
		return err
	}
	abort := s.slotAbort(slot, b.gen)
	return deadErr(b.down.PushAbort(shm.Record{Tag: xtag(XTagDone, b.gen)},
		time.Now().Add(xprocDeadline), abort), abort)
}

// Close shuts the facility down and unmaps the segment. The returned
// error is the unmap's — the "clean unmap" the cross-process demo
// asserts.
func (s *ProcServer) Close() error {
	s.fac.Shutdown()
	return s.seg.Close()
}

// ProcClient is a child process's attachment: the mapped segment, the
// claimed table slot, and its two rings. It deliberately has no
// facility — children are raw segment peers; the serving process owns
// every descriptor and the allocator (DESIGN.md §15).
type ProcClient struct {
	seg    *shm.Segment
	table  *core.SegTable
	h      shm.Handshake
	slot   int
	gen    uint32
	ppid   int
	down   *shm.XRing
	up     *shm.XRing
	served int
}

// AttachProc attaches via the socket inherited from proc.StartGroup
// (fd 3) — the one-call child side of ServeProc+Spawn. Fault points
// (chaos testing) are armed from the environment first, so a spawned
// worker binary needs no extra wiring to participate in crash drills.
func AttachProc() (*ProcClient, error) {
	if err := faultpoint.EnableFromEnv(); err != nil {
		return nil, err
	}
	conn, _, err := proc.ParentConn()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return AttachProcConn(conn)
}

// AttachProcConn attaches over an explicit unix socket: receive the
// segment fd and handshake (deadline-bounded — a dead parent surfaces
// as ErrHandshakeTimeout), map the segment, verify the table
// generation, claim the assigned slot, open the rings.
func AttachProcConn(conn *net.UnixConn) (*ProcClient, error) {
	seg, h, err := shm.RecvSegment(conn)
	if err != nil {
		return nil, err
	}
	faultpoint.Hit("child-attach")
	table, err := core.AttachSegTable(seg, h.TableOff, h.Generation)
	if err != nil {
		seg.Close()
		return nil, err
	}
	gen, err := table.ClaimGen(int(h.Slot), uint32(os.Getpid()))
	if err != nil {
		seg.Close()
		return nil, err
	}
	faultpoint.Hit("child-claim")
	c := &ProcClient{seg: seg, table: table, h: h, slot: int(h.Slot), gen: gen, ppid: os.Getppid()}
	if c.down, err = table.DownRing(c.slot); err == nil {
		c.up, err = table.UpRing(c.slot)
	}
	if err != nil {
		table.Detach(c.slot)
		seg.Close()
		return nil, err
	}
	return c, nil
}

// Slot returns the claimed table slot.
func (c *ProcClient) Slot() int { return c.slot }

// Gen returns the attach generation this client claimed the slot with.
func (c *ProcClient) Gen() uint32 { return c.gen }

// Handshake returns the attach frame the parent sent.
func (c *ProcClient) Handshake() shm.Handshake { return c.h }

// Served returns the number of payload records processed by Serve.
func (c *ProcClient) Served() int { return c.served }

// abort is the child-side liveness probe: the worker stops waiting the
// moment its parent process dies (getppid changes as init adopts the
// orphan) or its slot is no longer this incarnation's (a reaper
// mistakenly — or a chaos test deliberately — reclaimed it).
func (c *ProcClient) abort() error {
	if os.Getppid() != c.ppid {
		return fmt.Errorf("mpf: slot %d worker orphaned: %w", c.slot, ErrPeerDead)
	}
	st, g := c.table.SlotStateGen(c.slot)
	if st != core.SlotAttached || g != c.gen {
		return fmt.Errorf("mpf: slot %d reclaimed under worker: %w", c.slot, ErrPeerDead)
	}
	return nil
}

// payload resolves a ring record against this process's mapping,
// bounds-checking it against the arena region the handshake described
// — a corrupt descriptor fails here, not as a segment panic.
func (c *ProcClient) payload(rec shm.Record) ([]byte, error) {
	arenaEnd := c.h.ArenaOff + int64(c.h.BlockSize)*int64(c.h.NumBlocks+1)
	if rec.Len < 0 || rec.Off < c.h.ArenaOff || rec.Off+int64(rec.Len) > arenaEnd {
		return nil, fmt.Errorf("mpf: record window [%d,%d) outside arena [%d,%d)",
			rec.Off, rec.Off+int64(rec.Len), c.h.ArenaOff, arenaEnd)
	}
	return c.seg.At(rec.Off, int64(rec.Len)), nil
}

// Serve runs the worker loop: VIEW records are verified in place and
// acknowledged, LOAN records filled in place, until a DONE record
// arrives. Records tagged with a different attach generation are
// discarded (stale leftovers of a dead predecessor). It returns after
// detaching the slot; the caller still owns Close.
func (c *ProcClient) Serve() error {
	defer c.table.Detach(c.slot)
	for {
		rec, err := c.down.PopAbort(time.Now().Add(xprocDeadline), c.abort)
		if err != nil {
			return fmt.Errorf("mpf: slot %d worker: %w", c.slot, err)
		}
		if xtagGen(rec.Tag) != uint8(c.gen) {
			continue
		}
		switch xtagKind(rec.Tag) {
		case XTagDone:
			return nil
		case XTagView:
			pay, err := c.payload(rec)
			if err != nil {
				return err
			}
			if sum := xsum(pay); sum != rec.Word {
				return fmt.Errorf("mpf: slot %d: payload at %d sums %#x, parent said %#x",
					c.slot, rec.Off, sum, rec.Word)
			}
			faultpoint.Hit("child-ack")
			ack := shm.Record{Tag: xtag(XTagAck, c.gen), Word: rec.Word}
			if err := c.up.PushAbort(ack, time.Now().Add(xprocDeadline), c.abort); err != nil {
				return err
			}
			c.served++
		case XTagLoan:
			pay, err := c.payload(rec)
			if err != nil {
				return err
			}
			faultpoint.Hit("child-fill")
			fillPattern(pay, c.slot, int(rec.Word)|1<<20) // distinct from down-phase patterns
			filled := shm.Record{Tag: xtag(XTagFilled, c.gen), Word: xsum(pay)}
			if err := c.up.PushAbort(filled, time.Now().Add(xprocDeadline), c.abort); err != nil {
				return err
			}
			c.served++
		default:
			return fmt.Errorf("mpf: slot %d: unknown record tag %d", c.slot, xtagKind(rec.Tag))
		}
	}
}

// Close unmaps the child's view of the segment.
func (c *ProcClient) Close() error { return c.seg.Close() }
