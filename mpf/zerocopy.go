package mpf

import (
	"time"

	"repro/internal/core"
)

// The zero-copy payload plane. Send and Receive reproduce the paper's
// two structural copies (user buffer → shared blocks → user buffer);
// Loan and ReceiveView make both optional:
//
//	ln, _ := send.Loan(len(payload))   // blocks allocated up front
//	b, _ := ln.Bytes()                 // contiguous in the common case
//	produceInto(b)                     // write the payload in place
//	ln.Commit()                        // enqueue — zero send-side copies
//
//	v, _ := recv.ReceiveView()         // claim without copying
//	b, _ = v.Bytes()                   // read in place
//	consume(b)
//	v.Release()                        // allow the blocks to recycle
//
// Under BROADCAST every receiver's View aliases the same payload
// instance: fan-out to N readers costs zero receive-side copies instead
// of N. Views stay valid across connection close and facility shutdown
// until released (the blocks are orphaned to their pin holders), but a
// region running near capacity wants them short-lived. The ledger in
// Stats (PayloadCopiesIn/Out vs LoanSends/ViewReceives) records which
// plane traffic used; mpfbench -copies quantifies the difference.

// Loan is an in-flight zero-copy send: a message whose blocks the
// caller owns and writes in place before Commit links it into the
// circuit's FIFO. See SendConn.Loan.
type Loan = core.Loan

// View is a pinned zero-copy window onto a received message's payload.
// See RecvConn.ReceiveView.
type View = core.View

// ErrLoanDone is returned by Loan.Commit after the loan was already
// committed or aborted.
var ErrLoanDone = core.ErrLoanDone

// LoanBatch is a batch of in-flight zero-copy sends resolved together:
// N writable windows from one arena transaction, one CommitAll linking
// the whole run into the FIFO under a single circuit lock acquisition
// (CommitN commits a prefix and aborts the rest; AbortAll returns
// everything in one transaction). See SendConn.LoanBatch.
type LoanBatch = core.LoanBatch

// Loan allocates blocks for n payload bytes and hands them to the
// caller to fill in place; Commit then enqueues the message with zero
// send-side copies (message_send minus its copy). Allocation follows
// the facility's send policy exactly as Send does. The loan must be
// resolved with Commit or Abort; Abort is a safe deferred cleanup (it
// is a no-op after Commit).
func (s *SendConn) Loan(n int) (*Loan, error) {
	return s.p.fac.c.SendLoan(s.p.pid, s.id, n)
}

// LoanBatch allocates one zero-copy send window per length in ns, all
// in a single arena free-pool transaction — SendBatch's amortisation
// on the loan plane. Fill the windows in place (Bytes/View/Fill) and
// resolve the batch once: CommitAll enqueues every message under one
// circuit lock acquisition with one receiver wakeup, atomically with
// respect to other senders; AbortAll (safe to defer — a no-op once
// resolved) returns every chain in one transaction. Writer and
// TypedSender ship their multi-message traffic through this.
func (s *SendConn) LoanBatch(ns []int) (*LoanBatch, error) {
	return s.p.fac.c.LoanBatch(s.p.pid, s.id, ns)
}

// ReleaseViews releases every view in vs with batched unpinning: one
// circuit lock acquisition, one reclamation scan and one arena
// transaction per consecutive run of views from the same circuit —
// which is how Selector.WaitViews orders its results, so releasing a
// harvest costs O(ready circuits) lock traffic, not O(views).
// Already-released views are skipped, like Release itself.
func ReleaseViews(vs []*View) { core.ReleaseViews(vs) }

// ReceiveView blocks until a message is available and claims it as a
// pinned View instead of copying it out (message_receive minus its
// copy). The claim consumes the message exactly as Receive does; the
// caller reads the payload in place and must Release the view to let
// the blocks recycle.
func (r *RecvConn) ReceiveView() (*View, error) {
	return r.p.fac.c.ReceiveView(r.p.pid, r.id)
}

// ReceiveViewDeadline is ReceiveView bounded by d: it returns
// ErrTimeout if no message arrives in time.
func (r *RecvConn) ReceiveViewDeadline(d time.Duration) (*View, error) {
	return r.p.fac.c.ReceiveViewDeadline(r.p.pid, r.id, d)
}

// TryReceiveView claims a message as a pinned View like ReceiveView if
// one is available, reporting (v, true); otherwise it returns
// (nil, false) without blocking.
func (r *RecvConn) TryReceiveView() (*View, bool, error) {
	return r.p.fac.c.TryReceiveView(r.p.pid, r.id)
}
